//! One shard: a bank of per-stream predictors behind symbol interning.
//!
//! A shard owns every stream whose rank hashes to it, so all processing
//! inside a shard is single-threaded and allocation-free once a stream's
//! slot exists (the [`DpdPredictor`] reuses its fixed-capacity
//! [`mpp_core::Ring`]s; the interner only allocates when a *new* raw
//! symbol appears, which on periodic MPI streams happens a handful of
//! times per stream lifetime).
//!
//! Interning: predictors operate on dense `u64` ids rather than raw
//! symbols. Because the mapping is injective, equality structure — the
//! only thing the DPD's distance metric consults — is preserved, so the
//! detected periods and the mapped-back predictions are bit-identical to
//! running the predictor on raw symbols (property-tested in
//! `tests/equivalence.rs`).
//!
//! ## The slab-backed stream table
//!
//! Per-stream state lives in a [`StreamTable`]: keys are interned once
//! into stable slot ids (fxhash-fronted map, contiguous slab, free-list
//! reuse) and an intrusive last-seen-sorted LRU list is threaded through
//! the slots. The ingest hot path therefore costs **at most one cheap
//! hash per event** (zero on runs of the same stream, thanks to
//! batch-local memoization in [`Shard::observe_indexed_at`] /
//! [`Shard::observe_all_at`]), TTL sweeps pop expired slots off the
//! list head in O(reclaimed), and LRU victim selection reads a bounded
//! window instead of sorting the resident set — with victims provably
//! identical to the old collect-and-sort (see [`select_lru_victims`]
//! and `tests/stream_table.rs`). Each slot also carries a dense index
//! into the shard's per-job rollup vector, so per-event job accounting
//! is an array access, not a second map probe.
//!
//! ## Per-job time domains and the TTL rule
//!
//! Observations carry a *time-domain* stamp. Without a TTL, the stamp
//! is global engine time (the 1-based index of the event in the
//! engine-wide ingest order) and only orders LRU eviction. **With a TTL
//! configured, stamps are allocated from the owning job's own clock** —
//! the 1-based index of the event in *that job's* ingest order — so a
//! stream's age is measured exclusively in its own tenant's traffic.
//! This is the cross-tenant isolation rule: a co-resident job's flood
//! can never advance the clock that expires another job's idle streams
//! (regression-pinned in `tests/persistence.rs`).
//!
//! Each slot remembers the stamp of its latest observation
//! (`last_seen`). With a TTL of `t` events, a stream whose gap
//! `now − last_seen` exceeds `t` — with `now` the *same job's* current
//! time — is **logically evicted**: predictions return `None` and the
//! next observation restarts it cold (fresh predictor and interner).
//! The rule is enforced in two ways that are deliberately
//! indistinguishable:
//!
//! * lazily, when an expired slot is touched by a new observation
//!   (reset in place; the incoming stamp is the job's exact `now`), or
//!   consulted by a predict (masked to `None` against the caller's
//!   job-time `now`);
//! * eagerly, by [`Shard::sweep_expired`], which *removes* expired
//!   slots to reclaim memory. The sweep walks each job's domain list
//!   against that job's **watermark** — the highest stamp the shard has
//!   applied for the job ([`Shard::job_now`]), a conservative lower
//!   bound of the job's global clock that callers can tighten via
//!   [`Shard::fold_job_now`] (the engine's explicit-sweep path snapshots
//!   its per-job clocks and folds them in, so fully idle jobs still get
//!   reclaimed).
//!
//! Because a swept stream would have been reset at its next touch
//! anyway (the job-time gap only grows), sweep timing can never change
//! a prediction or a scoring counter (hits/misses/abstentions/churn/
//! events) — sweeps are pure memory reclamation, and sweeping against a
//! *lower bound* of job time only delays reclamation, never mis-expires.
//! The reclamation metrics themselves (`evicted`, `resident_streams`)
//! do reflect sweep progress: a stream that expires and is never
//! touched again is counted evicted (and released) only once some sweep
//! reaches it. The invariant holds whenever the shard's inputs are
//! stamp-monotone **per job** (each job's stamps arrive no smaller than
//! that job's watermark), which is guaranteed for the scoped engine and
//! for any single client of the persistent engine — and is what lets
//! persistent workers sweep only the shards that happen to receive
//! traffic while staying bit-identical to the sequential reference
//! (property-tested in `tests/persistence.rs`). Concurrent clients
//! racing on one job relax this to arrival order; see the
//! [`persistent`](crate::persistent) docs. (Per-job stamp-monotone
//! inputs are also what keep the LRU list's O(1) touch fast path hot; a
//! racy out-of-order stamp merely pays a short sorted re-insertion in
//! its own domain.)

use crate::engine::EnsembleConfig;
use crate::metrics::{JobMetrics, ModelStats, ShardMetrics};
use crate::snapshot::{EnsembleStreamState, MemberState, ShardState, StreamState};
use crate::stream_table::{SlotId, StreamTable};
use crate::telemetry::ShardTelemetry;
use crate::types::{JobId, Observation, Query, RankId, StreamKey, StreamKind};
use fxhash::FxHashMap;
use mpp_core::dpd::{DpdConfig, DpdPredictor};
use mpp_core::predictors::{Model, Predictor, PredictorKind, WordCursor};
use mpp_core::stream::SymbolMap;
use mpp_telemetry::{TelemetryConfig, TelemetrySnapshot};
use std::time::Instant;

/// The single definition of the TTL expiry rule: a stream whose last
/// observation is more than `ttl` time-domain events before `now` —
/// both in the owning job's time base — is logically evicted. The lazy
/// reset in [`Shard::observe_at`], the predict-time masking, and the
/// sweep's pop condition must stay exact complements of each other —
/// which is why they all call this.
///
/// **Out-of-order stamps are a contract, not an accident:** the age is
/// `now.saturating_sub(last_seen)`, so a `now` *behind* `last_seen` —
/// possible only when concurrent clients race stamp allocation against
/// a query — saturates to age 0 and reports the stream **fresh**. That
/// is the intended resolution: the stream demonstrably has an
/// observation at `last_seen`, so a stale reader must never expire it;
/// under racing writers the freshest information wins. A `u64`
/// subtraction that wrapped would instead report an astronomically old
/// stream and evict live state. Pinned by the `racy_stamps_*` proptest
/// in `tests/stream_table.rs`.
#[inline]
pub(crate) fn is_expired(ttl: Option<u64>, last_seen: u64, now: u64) -> bool {
    matches!(ttl, Some(t) if now.saturating_sub(last_seen) > t)
}

/// Orders LRU eviction candidates oldest-first — by last-observed
/// stamp, ties broken by `(job, rank, kind)` so every execution mode
/// picks identical victims — and keeps the first `n`. The single
/// definition of the LRU victim order, shared by [`Shard::lru_oldest`],
/// `Engine::evict_lru` and `EngineClient::evict_lru`. The shard feeds
/// it a bounded [`StreamTable::oldest_window`] rather than the whole
/// resident set; because the window provably contains every entry that
/// can rank among the first `n`, the selected victims are identical.
///
/// Under per-job time domains (TTL configured), stamps of different
/// jobs count different tenants' events, so the forced-eviction order
/// compares **job-local ages**: the victim is the stream least recently
/// touched *in its own job's time*, with the deterministic key
/// tie-break arbitrating across jobs. With one shared clock (no TTL)
/// this is exactly the historical global LRU order.
pub(crate) fn select_lru_victims(
    mut candidates: Vec<(u64, StreamKey)>,
    n: usize,
) -> Vec<(u64, StreamKey)> {
    candidates.sort_unstable_by_key(|&(seen, key)| (seen, key.job, key.rank, key.kind.index()));
    candidates.truncate(n);
    candidates
}

/// One challenger of a stream's ensemble: a roster predictor observing
/// the **raw** symbol stream (challengers like the stride predictor
/// extrapolate values that were never interned, so the dense-id domain
/// would be wrong for them) plus its standing `+1` forecast.
#[derive(Debug, Clone)]
pub(crate) struct ChallengerSlot {
    model: Model,
    /// Standing `+1` forecast in raw symbol space.
    pending: Option<u64>,
}

/// Per-stream champion/challenger state: who serves, the in-flight
/// scoring window, and the challenger bank. Boxed inside the slot so
/// DPD-only engines pay one `None` niche, not the roster's footprint.
#[derive(Debug, Clone)]
pub(crate) struct SlotEnsemble {
    /// Serving member index: 0 = primary DPD, `i > 0` = challenger
    /// `i - 1`. Swaps only at window boundaries, with hysteresis.
    champion: u32,
    /// Observations scored in the current window.
    window_seen: u32,
    /// Per-member hits in the current window (index 0 = primary).
    window_hits: Vec<u32>,
    challengers: Vec<ChallengerSlot>,
}

impl SlotEnsemble {
    fn new(ens: &EnsembleConfig, cfg: &DpdConfig) -> Self {
        SlotEnsemble {
            champion: 0,
            window_seen: 0,
            window_hits: vec![0; ens.roster_len()],
            challengers: ens
                .challengers
                .iter()
                .map(|&k| ChallengerSlot {
                    model: Model::build(k, cfg),
                    pending: None,
                })
                .collect(),
        }
    }

    /// [`PredictorKind::tag`] of member `m` (0 = the primary DPD).
    fn member_tag(&self, m: usize) -> u8 {
        if m == 0 {
            PredictorKind::Dpd.tag()
        } else {
            self.challengers[m - 1].model.kind().tag()
        }
    }
}

/// Predictor, interner and score-keeping state for one stream. The
/// recency stamp (`last_seen`) lives in the owning [`StreamTable`],
/// which needs it for LRU order; the slot carries the prediction state
/// plus a dense index into the shard's per-job rollups.
#[derive(Debug, Clone)]
pub(crate) struct StreamSlot {
    interner: SymbolMap,
    predictor: DpdPredictor,
    /// `+1` forecast (dense id) standing from the previous observation,
    /// scored against the next arrival. `None` while unlocked.
    pending_next: Option<u64>,
    /// Period seen after the previous observation, for churn counting.
    last_period: Option<usize>,
    /// Index of this stream's job in the shard's rollup vector —
    /// per-event job accounting without hashing the job id.
    job_idx: u32,
    /// Champion/challenger state; `None` on DPD-only engines, which
    /// keeps the default hot path byte-for-byte what it was.
    ensemble: Option<Box<SlotEnsemble>>,
}

impl StreamSlot {
    fn new(cfg: &DpdConfig, ens: &EnsembleConfig, job_idx: u32) -> Self {
        StreamSlot {
            interner: SymbolMap::new(),
            predictor: DpdPredictor::new(cfg.clone()),
            pending_next: None,
            last_period: None,
            job_idx,
            ensemble: ens.enabled().then(|| Box::new(SlotEnsemble::new(ens, cfg))),
        }
    }

    /// Ingests one raw symbol, updating the shard's and the owning
    /// job's hit/miss/churn counters in lockstep. With an ensemble,
    /// every member is scored against its standing forecast (the
    /// serving champion's outcome drives the legacy hit/miss counters)
    /// and the champion may swap at a window boundary. Returns whether
    /// the detected period changed, plus `(from_tag, to_tag)` if the
    /// champion swapped (the caller's flight-recorder hooks).
    #[inline]
    fn observe(
        &mut self,
        raw: u64,
        metrics: &mut ShardMetrics,
        job: &mut JobMetrics,
        ens_cfg: &EnsembleConfig,
        shard_models: &mut [ModelStats],
        job_models: &mut [ModelStats],
    ) -> (bool, Option<(u8, u8)>) {
        let id = u64::from(self.interner.intern(raw));
        let mut swap = None;
        if let Some(ens) = self.ensemble.as_deref_mut() {
            // Score every member on this arrival. Member 0 (the primary
            // DPD) forecasts in dense-id space; challengers in raw
            // space. Identical comparisons either way — interning is
            // injective — so the scoreboard is domain-agnostic.
            for m in 0..ens.window_hits.len() {
                let (pending, expected) = if m == 0 {
                    (self.pending_next, id)
                } else {
                    (ens.challengers[m - 1].pending, raw)
                };
                let is_champion = m as u32 == ens.champion;
                let (sm, jm) = (&mut shard_models[m], &mut job_models[m]);
                match pending {
                    Some(p) if p == expected => {
                        sm.hits += 1;
                        jm.hits += 1;
                        ens.window_hits[m] += 1;
                        if is_champion {
                            metrics.hits += 1;
                            job.hits += 1;
                        }
                    }
                    Some(_) => {
                        sm.misses += 1;
                        jm.misses += 1;
                        if is_champion {
                            metrics.misses += 1;
                            job.misses += 1;
                        }
                    }
                    None => {
                        sm.abstentions += 1;
                        jm.abstentions += 1;
                        if is_champion {
                            metrics.abstentions += 1;
                            job.abstentions += 1;
                        }
                    }
                }
                if is_champion {
                    sm.champion_events += 1;
                    jm.champion_events += 1;
                }
            }
            ens.window_seen += 1;
            for c in &mut ens.challengers {
                c.model.observe(raw);
                c.pending = c.model.predict(1);
            }
            // Window boundary: promote the strict-argmax member (ties
            // keep the lowest index) only if it leads the incumbent by
            // the hysteresis margin — sustained lead, not noise.
            if ens.window_seen >= ens_cfg.window {
                let champ = ens.champion as usize;
                let mut best = 0usize;
                for i in 1..ens.window_hits.len() {
                    if ens.window_hits[i] > ens.window_hits[best] {
                        best = i;
                    }
                }
                if best != champ
                    && ens.window_hits[best] >= ens.window_hits[champ] + ens_cfg.min_lead
                {
                    let from = ens.member_tag(champ);
                    let to = ens.member_tag(best);
                    ens.champion = best as u32;
                    shard_models[best].swaps_in += 1;
                    job_models[best].swaps_in += 1;
                    swap = Some((from, to));
                }
                ens.window_seen = 0;
                ens.window_hits.iter_mut().for_each(|h| *h = 0);
            }
        } else {
            match self.pending_next {
                Some(p) if p == id => {
                    metrics.hits += 1;
                    job.hits += 1;
                }
                Some(_) => {
                    metrics.misses += 1;
                    job.misses += 1;
                }
                None => {
                    metrics.abstentions += 1;
                    job.abstentions += 1;
                }
            }
        }
        self.predictor.observe(id);
        let period = self.predictor.period();
        let churned = period != self.last_period;
        if churned {
            metrics.period_churn += 1;
            job.period_churn += 1;
            self.last_period = period;
        }
        self.pending_next = self.predictor.predict(1);
        metrics.events_ingested += 1;
        job.events_ingested += 1;
        (churned, swap)
    }

    /// Predicts the raw symbol `horizon` steps ahead — served by the
    /// stream's champion (challengers already predict in raw space).
    #[inline]
    fn predict(&self, horizon: usize) -> Option<u64> {
        if let Some(ens) = self.ensemble.as_deref() {
            if ens.champion > 0 {
                return ens.challengers[ens.champion as usize - 1]
                    .model
                    .predict(horizon);
            }
        }
        let id = self.predictor.predict(horizon)?;
        Some(self.raw_of(id))
    }

    /// Predicts the next `horizons` raw symbols into `out` (cleared and
    /// refilled; capacity reused) — the forecast path's allocation-free
    /// bulk variant, built on [`DpdPredictor::predict_next_into`].
    /// Served by the champion, like [`StreamSlot::predict`].
    fn predict_next_into(&self, horizons: usize, out: &mut Vec<Option<u64>>) {
        if let Some(ens) = self.ensemble.as_deref() {
            if ens.champion > 0 {
                ens.challengers[ens.champion as usize - 1]
                    .model
                    .predict_next_into(horizons, out);
                return;
            }
        }
        self.predictor.predict_next_into(horizons, out);
        for v in out.iter_mut() {
            *v = v.map(|id| self.raw_of(id));
        }
    }

    /// Maps a predicted dense id back to its raw symbol.
    #[inline]
    fn raw_of(&self, id: u64) -> u64 {
        self.interner
            .symbol(u32::try_from(id).expect("dense ids fit u32"))
            .expect("predicted id was interned")
    }

    fn period(&self) -> Option<usize> {
        self.predictor.period()
    }

    fn confidence(&self) -> Option<f64> {
        self.predictor.confidence()
    }
}

/// A single-threaded predictor bank for one hash partition of ranks.
#[derive(Debug)]
pub struct Shard {
    cfg: DpdConfig,
    /// Champion/challenger roster + selection policy. The default
    /// (no challengers) keeps every slot ensemble-free.
    ensemble: EnsembleConfig,
    /// TTL in events of the owning job's clock; `None` disables expiry.
    ttl: Option<u64>,
    /// The slab-backed stream table (see the [module docs](self)).
    table: StreamTable<StreamSlot>,
    metrics: ShardMetrics,
    /// Per-job scoring rollups, in first-ingest order (sorted on read).
    /// Entries outlive their job's streams (history survives eviction);
    /// each entry's `resident_streams` is maintained incrementally on
    /// slot creation/removal, so metrics reads never scan the slots.
    jobs: Vec<(JobId, JobMetrics)>,
    /// Job id → index into `jobs`, consulted only off the per-event
    /// path (slot creation, predict/forecast rollups).
    job_index: FxHashMap<JobId, u32>,
    /// Shard-level per-model counters, positional over the roster
    /// (index 0 = primary DPD). Empty — and never allocated — when the
    /// ensemble is off.
    model_stats: Vec<ModelStats>,
    /// Per-job per-model counters, parallel to `jobs` (inner vectors
    /// empty when the ensemble is off).
    job_models: Vec<Vec<ModelStats>>,
    /// Per-job time watermarks, parallel to `jobs`: the highest stamp
    /// this shard has applied for each job, tightened further by
    /// [`Shard::fold_job_now`]. With a TTL configured this is the
    /// shard's (conservative) view of each job's current time — the
    /// sweep's `now` (see the [module docs](self)).
    job_clocks: Vec<u64>,
    /// Highest stamp this shard has processed across all jobs (used to
    /// stamp untimed `observe` calls from standalone/unit-test use and
    /// to throttle sweeps).
    clock: u64,
    /// Engine time of the last sweep (throttles [`Shard::maybe_sweep`]).
    last_sweep: u64,
    /// Forecast scratch columns (sender / size), reused across
    /// [`Shard::forecast_at`] calls.
    fc_sender: Vec<Option<u64>>,
    fc_size: Vec<Option<u64>>,
    /// Latency histograms + flight recorder; `None` (the default) keeps
    /// the hot path free of clock reads. Boxed to keep the disabled
    /// shard small.
    telemetry: Option<Box<ShardTelemetry>>,
}

impl Shard {
    /// Creates an empty shard whose predictors use `cfg`, with no TTL.
    pub fn new(cfg: DpdConfig) -> Self {
        Self::with_ttl(cfg, None)
    }

    /// Creates an empty shard with an idle-stream TTL (in engine-time
    /// events; see the [module docs](self) for the expiry rule).
    pub fn with_ttl(cfg: DpdConfig, ttl: Option<u64>) -> Self {
        Self::with_ensemble(cfg, ttl, EnsembleConfig::default())
    }

    /// Creates an empty shard with an idle-stream TTL and a
    /// champion/challenger ensemble. With no challengers this is
    /// exactly [`Shard::with_ttl`]: slots stay ensemble-free and no
    /// per-model state is allocated.
    pub fn with_ensemble(cfg: DpdConfig, ttl: Option<u64>, ensemble: EnsembleConfig) -> Self {
        let model_stats = if ensemble.enabled() {
            vec![ModelStats::default(); ensemble.roster_len()]
        } else {
            Vec::new()
        };
        Shard {
            cfg,
            ensemble,
            ttl,
            table: StreamTable::new(),
            metrics: ShardMetrics::default(),
            jobs: Vec::new(),
            job_index: FxHashMap::default(),
            model_stats,
            job_models: Vec::new(),
            job_clocks: Vec::new(),
            clock: 0,
            last_sweep: 0,
            fc_sender: Vec::new(),
            fc_size: Vec::new(),
            telemetry: None,
        }
    }

    /// Attaches telemetry state (histograms + flight ring) to this
    /// shard. A no-op when `cfg.enabled` is false.
    pub fn enable_telemetry(&mut self, cfg: &TelemetryConfig, shard_id: u32) {
        if cfg.enabled {
            self.telemetry = Some(Box::new(ShardTelemetry::new(cfg, shard_id)));
        }
    }

    /// The shard's telemetry state, if enabled (recording handles take
    /// `&self`; used by the persistent worker's queue-wait hook).
    #[inline]
    pub(crate) fn telemetry(&self) -> Option<&ShardTelemetry> {
        self.telemetry.as_deref()
    }

    /// The shard's exportable telemetry snapshot (histograms, flight
    /// ring, counter totals), or `None` when telemetry is disabled.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry
            .as_ref()
            .map(|t| t.snapshot(&self.metrics(), &self.ensemble, &self.model_stats))
    }

    /// Whether `last_seen` has expired as of engine time `now`.
    #[inline]
    fn expired(&self, last_seen: u64, now: u64) -> bool {
        is_expired(self.ttl, last_seen, now)
    }

    /// Index of `job`'s rollup entry, creating it on first ingest.
    #[inline]
    fn job_entry(&mut self, job: JobId) -> u32 {
        if let Some(&i) = self.job_index.get(&job) {
            return i;
        }
        let i = u32::try_from(self.jobs.len()).expect("job count fits u32");
        self.job_index.insert(job, i);
        self.jobs.push((job, JobMetrics::default()));
        // `vec![x; 0]` when the ensemble is off: no allocation.
        self.job_models
            .push(vec![ModelStats::default(); self.model_stats.len()]);
        self.job_clocks.push(0);
        i
    }

    /// The shard's watermark of `job`'s current time: the highest stamp
    /// applied for the job, tightened by [`Shard::fold_job_now`]. 0 for
    /// a job this shard has never ingested (such a job has no streams
    /// here, so every lookup misses regardless of the time used).
    #[inline]
    pub fn job_now(&self, job: JobId) -> u64 {
        self.job_index
            .get(&job)
            .map_or(0, |&i| self.job_clocks[i as usize])
    }

    /// Advances `job`'s watermark to at least `now` — the hook for a
    /// caller that knows the job's clock has moved past what this
    /// shard's own traffic shows (the engine's explicit-sweep path).
    /// Monotone (never moves a watermark backwards) and a no-op for
    /// jobs this shard has never ingested; always safe because the
    /// caller only passes true job-clock readings, and reclamation
    /// against any lower bound of job time is prediction-invisible
    /// (see the [module docs](self)).
    #[inline]
    pub fn fold_job_now(&mut self, job: JobId, now: u64) {
        if let Some(&i) = self.job_index.get(&job) {
            let wm = &mut self.job_clocks[i as usize];
            *wm = (*wm).max(now);
        }
    }

    /// The slot serving `key`, interning it (and its job) on first
    /// sight. `at` stamps a freshly created slot; existing slots keep
    /// their stamp until [`Shard::observe_slot`] touches them.
    #[inline]
    fn slot_for(&mut self, key: StreamKey, at: u64) -> SlotId {
        if let Some(id) = self.table.get(key) {
            return id;
        }
        let job_idx = self.job_entry(key.job);
        self.jobs[job_idx as usize].1.resident_streams += 1;
        self.table
            .insert(key, at, StreamSlot::new(&self.cfg, &self.ensemble, job_idx))
    }

    /// The per-event ingest step shared by every observe path: lazy TTL
    /// reset, scoring, and the O(1) LRU touch.
    #[inline]
    fn observe_slot(&mut self, id: SlotId, raw: u64, at: u64) {
        let seen = self.table.last_seen(id);
        // Lazy TTL: an expired slot restarts cold, exactly as if a
        // sweep had removed it and this observation re-created it.
        if seen > 0 && is_expired(self.ttl, seen, at) {
            let slot = self.table.payload_mut(id);
            let job_idx = slot.job_idx;
            *slot = StreamSlot::new(&self.cfg, &self.ensemble, job_idx);
            self.metrics.evicted += 1;
            self.jobs[job_idx as usize].1.evicted += 1;
            if let Some(tel) = self.telemetry.as_deref_mut() {
                let key = self.table.key_of(id);
                tel.note_eviction(at, key.job, key.rank, seen);
            }
        }
        let slot = self.table.payload_mut(id);
        let job_idx = slot.job_idx as usize;
        let wm = &mut self.job_clocks[job_idx];
        *wm = (*wm).max(at);
        let job = &mut self.jobs[job_idx].1;
        let (churned, swap) = slot.observe(
            raw,
            &mut self.metrics,
            job,
            &self.ensemble,
            &mut self.model_stats,
            &mut self.job_models[job_idx],
        );
        if churned {
            // Off the steady-state path: churn means a lock transition.
            if let Some(tel) = self.telemetry.as_deref_mut() {
                let key = self.table.key_of(id);
                let ended = self.table.payload(id).predictor.ended_run_len();
                tel.note_churn(at, key.job, key.rank, ended);
            }
        }
        if let Some((from, to)) = swap {
            if let Some(tel) = self.telemetry.as_deref_mut() {
                let key = self.table.key_of(id);
                tel.note_champion_swap(at, key, from, to);
            }
        }
        self.table.touch(id, at);
    }

    /// Ingests one observation stamped with engine time `at`.
    #[inline]
    pub fn observe_at(&mut self, obs: Observation, at: u64) {
        self.clock = self.clock.max(at);
        let id = self.slot_for(obs.key, at);
        self.observe_slot(id, obs.value, at);
    }

    /// Ingests one observation, stamping it one tick after the latest
    /// this shard has seen (standalone use; engines stamp globally).
    #[inline]
    pub fn observe(&mut self, obs: Observation) {
        self.observe_at(obs, self.clock + 1);
    }

    /// Records a batch-leg size in the `max_batch_depth` high-water
    /// mark (load-balance signal across shards).
    #[inline]
    pub fn note_batch_depth(&mut self, depth: u64) {
        self.metrics.max_batch_depth = self.metrics.max_batch_depth.max(depth);
    }

    /// The memoized batch-ingest loop shared by both batch entry
    /// points. NAS traces repeat the same stream in consecutive events,
    /// so the loop memoizes the last `(key, slot)` pair and skips even
    /// the fxhash probe on runs. The memo is sound because no observe
    /// path frees a slot (lazy TTL resets in place), so a batch-local
    /// id stays valid for the whole run.
    fn observe_run(&mut self, events: impl Iterator<Item = (Observation, u64)>) {
        let mut memo: Option<(StreamKey, SlotId)> = None;
        for (obs, at) in events {
            self.clock = self.clock.max(at);
            let id = match memo {
                Some((key, id)) if key == obs.key => id,
                _ => {
                    let id = self.slot_for(obs.key, at);
                    memo = Some((obs.key, id));
                    id
                }
            };
            self.observe_slot(id, obs.value, at);
        }
    }

    /// Ingests the subset of `batch` selected by `indices`, in order,
    /// stamping element `i` of `batch` with engine time `base + i + 1`.
    /// This is the per-shard leg of a batched ingest: `indices` is a
    /// preallocated scratch buffer owned by the engine, so the steady
    /// state allocates nothing (same-stream runs are memoized — see
    /// [`Shard::observe_run`]).
    pub fn observe_indexed_at(&mut self, batch: &[Observation], indices: &[u32], base: u64) {
        let t0 = self.telemetry.as_ref().map(|_| Instant::now());
        self.note_batch_depth(indices.len() as u64);
        self.observe_run(
            indices
                .iter()
                .map(|&i| (batch[i as usize], base + u64::from(i) + 1)),
        );
        if let (Some(t0), Some(tel)) = (t0, self.telemetry.as_deref()) {
            tel.note_batch(t0.elapsed().as_nanos() as u64, indices.len());
        }
    }

    /// Like [`Shard::observe_indexed_at`], but with explicit per-event
    /// stamps: `stamps[i]` (parallel to `batch`, not to `indices`)
    /// stamps `batch[i]`. This is the per-job time-domain ingest path —
    /// the engine allocates each event's stamp from its job's clock and
    /// hands the whole column down, so the shard never needs to know
    /// the clock-allocation policy.
    pub fn observe_indexed_stamped(
        &mut self,
        batch: &[Observation],
        indices: &[u32],
        stamps: &[u64],
    ) {
        let t0 = self.telemetry.as_ref().map(|_| Instant::now());
        self.note_batch_depth(indices.len() as u64);
        self.observe_run(
            indices
                .iter()
                .map(|&i| (batch[i as usize], stamps[i as usize])),
        );
        if let (Some(t0), Some(tel)) = (t0, self.telemetry.as_deref()) {
            tel.note_batch(t0.elapsed().as_nanos() as u64, indices.len());
        }
    }

    /// Like [`Shard::observe_all_at`], but with explicit per-event
    /// stamps (`stamps[i]` stamps `batch[i]`) — the single-shard fast
    /// path of the per-job time-domain ingest.
    pub fn observe_all_stamped(&mut self, batch: &[Observation], stamps: &[u64]) {
        let t0 = self.telemetry.as_ref().map(|_| Instant::now());
        self.note_batch_depth(batch.len() as u64);
        self.observe_run(batch.iter().zip(stamps).map(|(obs, &at)| (*obs, at)));
        if let (Some(t0), Some(tel)) = (t0, self.telemetry.as_deref()) {
            tel.note_batch(t0.elapsed().as_nanos() as u64, batch.len());
        }
    }

    /// Ingests every event of `batch`, in order, stamped from
    /// `base + 1` (single-shard fast path: no partitioning needed).
    /// Memoized like [`Shard::observe_indexed_at`].
    pub fn observe_all_at(&mut self, batch: &[Observation], base: u64) {
        let t0 = self.telemetry.as_ref().map(|_| Instant::now());
        self.note_batch_depth(batch.len() as u64);
        self.observe_run(
            batch
                .iter()
                .enumerate()
                .map(|(i, obs)| (*obs, base + i as u64 + 1)),
        );
        if let (Some(t0), Some(tel)) = (t0, self.telemetry.as_deref()) {
            tel.note_batch(t0.elapsed().as_nanos() as u64, batch.len());
        }
    }

    /// Serves one query at engine time `now`. Returns `None` for
    /// unknown or expired streams, horizon 0, or streams without a
    /// locked period. Counts toward `predictions_served` (the forecast
    /// path has its own counters — see [`crate::metrics`]).
    #[inline]
    pub fn predict_at(&mut self, q: Query, now: u64) -> Option<u64> {
        self.metrics.predictions_served += 1;
        // Only jobs that have ingested get a rollup: materialising an
        // entry per *queried* job would let wrong/stale job ids grow
        // the map without bound and report phantom tenants.
        if let Some(&ji) = self.job_index.get(&q.key.job) {
            self.jobs[ji as usize].1.predictions_served += 1;
        }
        let id = self.table.get(q.key)?;
        if self.expired(self.table.last_seen(id), now) {
            return None;
        }
        self.table.payload(id).predict(q.horizon as usize)
    }

    /// Serves one query at the queried job's own current time
    /// (standalone use; engines pass the job-time `now` explicitly).
    #[inline]
    pub fn predict(&mut self, q: Query) -> Option<u64> {
        let now = self.job_now(q.key.job);
        self.predict_at(q, now)
    }

    /// Fills `out` with one stream's `+1..=+depth` forecasts (all
    /// `None` for unknown/expired streams) without touching any
    /// metric counter — the internal predict path forecasts ride on.
    fn predict_stream_into(
        &self,
        key: StreamKey,
        depth: usize,
        now: u64,
        out: &mut Vec<Option<u64>>,
    ) {
        out.clear();
        match self.table.get(key) {
            Some(id) if !self.expired(self.table.last_seen(id), now) => {
                self.table.payload(id).predict_next_into(depth, out);
            }
            _ => out.resize(depth, None),
        }
    }

    /// The next `depth` forecast (sender, size) pairs for `rank` of
    /// `job` — the shape the runtime policies (§2 of the paper)
    /// consume. Both attribute streams of a `(job, rank)` live in the
    /// same shard by construction.
    ///
    /// Metrics: one call counts as **one** served forecast
    /// (`forecasts_served`) plus `2 × depth` per-stream forecast
    /// predictions (`forecast_predictions`); it does **not** inflate
    /// `predictions_served`, which counts explicit predict queries
    /// (see [`crate::metrics`]). Costs two fxhash probes and zero
    /// allocations in steady state (scratch columns and `out` reuse
    /// their capacity).
    pub fn forecast_at(
        &mut self,
        job: JobId,
        rank: RankId,
        depth: usize,
        now: u64,
        out: &mut Vec<(Option<u64>, Option<u64>)>,
    ) {
        let t0 = self.telemetry.as_ref().map(|_| Instant::now());
        out.clear();
        self.metrics.forecasts_served += 1;
        self.metrics.forecast_predictions += 2 * depth as u64;
        if let Some(&ji) = self.job_index.get(&job) {
            let jm = &mut self.jobs[ji as usize].1;
            jm.forecasts_served += 1;
            jm.forecast_predictions += 2 * depth as u64;
        }
        let mut sender_col = std::mem::take(&mut self.fc_sender);
        let mut size_col = std::mem::take(&mut self.fc_size);
        self.predict_stream_into(
            StreamKey::for_job(job, rank, StreamKind::Sender),
            depth,
            now,
            &mut sender_col,
        );
        self.predict_stream_into(
            StreamKey::for_job(job, rank, StreamKind::Size),
            depth,
            now,
            &mut size_col,
        );
        out.reserve(depth);
        out.extend(sender_col.iter().copied().zip(size_col.iter().copied()));
        self.fc_sender = sender_col;
        self.fc_size = size_col;
        if let (Some(t0), Some(tel)) = (t0, self.telemetry.as_deref()) {
            tel.note_forecast(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Detected period of a stream (`None` if unknown, unlocked, or
    /// expired at engine time `now`).
    pub fn period_of_at(&self, key: StreamKey, now: u64) -> Option<usize> {
        let id = self.table.get(key)?;
        if self.expired(self.table.last_seen(id), now) {
            return None;
        }
        self.table.payload(id).period()
    }

    /// Detected period at the key's job time (standalone use).
    pub fn period_of(&self, key: StreamKey) -> Option<usize> {
        self.period_of_at(key, self.job_now(key.job))
    }

    /// Detector confidence of a stream's lock (expiry-masked like
    /// [`Shard::period_of_at`]).
    pub fn confidence_of_at(&self, key: StreamKey, now: u64) -> Option<f64> {
        let id = self.table.get(key)?;
        if self.expired(self.table.last_seen(id), now) {
            return None;
        }
        self.table.payload(id).confidence()
    }

    /// Detector confidence at the key's job time.
    pub fn confidence_of(&self, key: StreamKey) -> Option<f64> {
        self.confidence_of_at(key, self.job_now(key.job))
    }

    /// Removes every slot whose stream has expired in its own job's
    /// time, returning how many were reclaimed. Pure memory
    /// reclamation: cannot change any later prediction or counter (see
    /// the [module docs](self)). Each job's domain list is sorted by
    /// `last_seen`, so the sweep pops expired slots off each domain
    /// head — comparing against **that job's watermark**
    /// ([`Shard::job_now`]) — and stops at the first live one:
    /// O(domains + reclaimed), not O(resident). `now` is the shard's
    /// engine-scale clock, used only to reset the sweep throttle and
    /// stamp telemetry events; callers with fresher job clocks fold
    /// them in first ([`Shard::fold_job_now`]).
    pub fn sweep_expired(&mut self, now: u64) -> usize {
        let ttl = self.ttl;
        if ttl.is_none() {
            return 0;
        }
        let mut removed = 0usize;
        for d in 0..self.table.domain_count() {
            let job_now = self.job_now(self.table.domain_job(d));
            while let Some(id) = self.table.domain_oldest(d) {
                let seen = self.table.last_seen(id);
                if !is_expired(ttl, seen, job_now) {
                    break;
                }
                let (key, slot) = self.table.remove(id);
                let jm = &mut self.jobs[slot.job_idx as usize].1;
                jm.evicted += 1;
                jm.resident_streams -= 1;
                removed += 1;
                if let Some(tel) = self.telemetry.as_deref_mut() {
                    tel.note_eviction(now, key.job, key.rank, seen);
                }
            }
        }
        self.metrics.evicted += removed as u64;
        self.last_sweep = now;
        removed
    }

    /// Sweeps only when the clock has advanced at least half a TTL
    /// since the last sweep — the per-batch reclamation hook. Safe at
    /// any frequency by the sweep-timing invariance (module docs); the
    /// head-pop sweep is already O(reclaimed), so the throttle now only
    /// saves the per-batch call overhead, at the cost of expired slots
    /// lingering at most an extra ttl/2 events.
    pub fn maybe_sweep(&mut self, now: u64) -> usize {
        match self.ttl {
            Some(t) if now.saturating_sub(self.last_sweep) >= (t / 2).max(1) => {
                self.sweep_expired(now)
            }
            _ => 0,
        }
    }

    /// Forcibly evicts one stream, returning whether it was resident.
    /// The stream restarts cold if observed again.
    pub fn evict_stream(&mut self, key: StreamKey) -> bool {
        let Some(id) = self.table.get(key) else {
            return false;
        };
        let seen = self.table.last_seen(id);
        let (_, slot) = self.table.remove(id);
        self.metrics.evicted += 1;
        let jm = &mut self.jobs[slot.job_idx as usize].1;
        jm.evicted += 1;
        jm.resident_streams -= 1;
        if let Some(tel) = self.telemetry.as_deref_mut() {
            tel.note_eviction(self.clock, key.job, key.rank, seen);
        }
        true
    }

    /// Forcibly evicts every resident stream of `job`, returning how
    /// many were removed. The job's rollup counters survive (only its
    /// predictor state is reclaimed); returning streams restart cold.
    pub fn evict_job(&mut self, job: JobId) -> usize {
        let jobs = &mut self.jobs;
        let mut tel = self.telemetry.as_deref_mut();
        let clock = self.clock;
        let removed = self.table.retain(|key, slot| {
            let keep = key.job != job;
            if !keep {
                jobs[slot.job_idx as usize].1.resident_streams -= 1;
                if let Some(t) = tel.as_deref_mut() {
                    t.note_eviction(clock, key.job, key.rank, 0);
                }
            }
            keep
        });
        self.metrics.evicted += removed as u64;
        if removed > 0 {
            // A resident stream implies its job has a rollup; never
            // materialise one for a job this shard has not ingested.
            let ji = self.job_index[&job] as usize;
            self.jobs[ji].1.evicted += removed as u64;
        }
        removed
    }

    /// Jobs with at least one resident stream, ascending. Reads the
    /// maintained per-job resident counters — O(jobs), never a scan of
    /// the stream table.
    pub fn resident_jobs(&self) -> Vec<JobId> {
        let mut jobs: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, m)| m.resident_streams > 0)
            .map(|&(job, _)| job)
            .collect();
        jobs.sort_unstable();
        jobs
    }

    /// Per-job scoring rollups, ascending by job id. Jobs whose streams
    /// were all evicted keep their history here; `resident_streams` is
    /// maintained incrementally, so this is O(jobs log jobs) regardless
    /// of the resident-stream count.
    pub fn job_metrics(&self) -> Vec<(JobId, JobMetrics)> {
        let mut out = self.jobs.clone();
        out.sort_unstable_by_key(|&(job, _)| job);
        out
    }

    /// The `n` least-recently-observed resident streams, oldest first
    /// (ties broken by key for determinism) — the LRU victim order.
    /// Reads a bounded window off the recency list (O(n + ties)); the
    /// victims are identical to sorting the whole resident set.
    pub fn lru_oldest(&self, n: usize) -> Vec<(u64, StreamKey)> {
        select_lru_victims(self.table.oldest_window(n), n)
    }

    /// Forcibly evicts the `n` least-recently-observed streams,
    /// returning how many were removed. O(n + ties) in the resident
    /// set: victim selection reads the LRU window and each eviction is
    /// a constant-time slab removal.
    pub fn evict_lru(&mut self, n: usize) -> usize {
        let victims = self.lru_oldest(n);
        for (_, key) in &victims {
            self.evict_stream(*key);
        }
        victims.len()
    }

    /// Number of resident streams (including expired-but-unswept ones).
    pub fn stream_count(&self) -> usize {
        self.table.len()
    }

    /// The configured TTL, if any.
    pub fn ttl(&self) -> Option<u64> {
        self.ttl
    }

    /// The champion/challenger configuration this shard runs.
    pub fn ensemble(&self) -> &EnsembleConfig {
        &self.ensemble
    }

    /// Shard-level per-model counters, positional over the roster
    /// (index 0 = primary DPD). Empty when the ensemble is off.
    pub fn model_stats(&self) -> Vec<ModelStats> {
        self.model_stats.clone()
    }

    /// Per-job per-model counters, ascending by job id (the per-model
    /// analogue of [`Shard::job_metrics`]; inner vectors empty when the
    /// ensemble is off).
    pub fn job_model_stats(&self) -> Vec<(JobId, Vec<ModelStats>)> {
        let mut out: Vec<(JobId, Vec<ModelStats>)> = self
            .jobs
            .iter()
            .zip(&self.job_models)
            .map(|(&(job, _), models)| (job, models.clone()))
            .collect();
        out.sort_unstable_by_key(|&(job, _)| job);
        out
    }

    /// Counter snapshot (resident stream count refreshed on read).
    pub fn metrics(&self) -> ShardMetrics {
        let mut m = self.metrics;
        m.resident_streams = self.table.len() as u64;
        m
    }

    /// Drops all stream state, keeping configuration and counters.
    pub fn clear_streams(&mut self) {
        self.table.clear();
        for (_, m) in &mut self.jobs {
            m.resident_streams = 0;
        }
    }

    // --- snapshot / restore / migration (see [`crate::snapshot`]) ---

    /// Serializes one stream's complete state. Symbols are dumped in
    /// dense-id order so re-interning them in order rebuilds the exact
    /// `raw → id` mapping; the predictor exports through
    /// [`DpdPredictor::export_state`].
    fn export_stream(&self, id: SlotId) -> StreamState {
        let slot = self.table.payload(id);
        let symbols = (0..u32::try_from(slot.interner.len()).expect("dense ids fit u32"))
            .map(|i| slot.interner.symbol(i).expect("dense ids are contiguous"))
            .collect();
        StreamState {
            key: self.table.key_of(id),
            last_seen: self.table.last_seen(id),
            symbols,
            predictor: slot.predictor.export_state(),
            pending_next: slot.pending_next,
            last_period: slot.last_period.map(|p| p as u64),
            ensemble: slot.ensemble.as_deref().map(|ens| EnsembleStreamState {
                champion: ens.champion,
                window_seen: ens.window_seen,
                window_hits: ens.window_hits.clone(),
                members: ens
                    .challengers
                    .iter()
                    .map(|c| {
                        let mut words = Vec::new();
                        c.model.export_words(&mut words);
                        MemberState {
                            kind_tag: c.model.kind().tag(),
                            pending: c.pending,
                            words,
                        }
                    })
                    .collect(),
            }),
        }
    }

    /// Rebuilds a slot from its serialized state, bit-identical to the
    /// one [`Shard::export_stream`] read. The ensemble members hydrate
    /// through their word codecs; `check_config` has already matched
    /// the roster, and the payload survived the frame checksum, so a
    /// hydrate failure here means the snapshot lied about itself.
    fn rebuild_slot(&self, s: &StreamState, job_idx: u32) -> StreamSlot {
        let mut interner = SymbolMap::new();
        for &sym in &s.symbols {
            interner.intern(sym);
        }
        let ensemble = s.ensemble.as_ref().map(|es| {
            let mut ens = SlotEnsemble::new(&self.ensemble, &self.cfg);
            debug_assert_eq!(es.members.len(), ens.challengers.len());
            ens.champion = es.champion;
            ens.window_seen = es.window_seen;
            ens.window_hits.clone_from(&es.window_hits);
            for (c, m) in ens.challengers.iter_mut().zip(&es.members) {
                debug_assert_eq!(c.model.kind().tag(), m.kind_tag);
                let mut cur = WordCursor::new(&m.words);
                c.model
                    .hydrate_words(&mut cur)
                    .expect("checksummed member state hydrates");
                cur.finish().expect("member state fully consumed");
                c.pending = m.pending;
            }
            Box::new(ens)
        });
        StreamSlot {
            interner,
            predictor: DpdPredictor::from_state(self.cfg.clone(), &s.predictor),
            pending_next: s.pending_next,
            last_period: s.last_period.map(|p| p as usize),
            job_idx,
            ensemble,
        }
    }

    /// Serializes the shard's complete predictive state: counters,
    /// clocks, per-job rollups with their watermarks (in first-ingest
    /// order — the order the rollup vector and the table's domains
    /// intern in), and every resident stream in per-domain LRU order.
    pub(crate) fn export_state(&self) -> ShardState {
        let mut streams = Vec::with_capacity(self.table.len());
        for d in 0..self.table.domain_count() {
            for id in self.table.domain_iter(d) {
                streams.push(self.export_stream(id));
            }
        }
        ShardState {
            metrics: self.metrics(),
            clock: self.clock,
            last_sweep: self.last_sweep,
            jobs: self
                .jobs
                .iter()
                .zip(&self.job_clocks)
                .map(|(&(job, m), &wm)| (job, m, wm))
                .collect(),
            model_stats: self.model_stats.clone(),
            job_models: self.job_models.clone(),
            streams,
        }
    }

    /// Replaces the shard's predictive state with `st`, keeping its
    /// configuration, TTL, and telemetry. Jobs (and their table
    /// domains) are re-interned in serialized order *before* streams
    /// are inserted, reproducing the source's domain order — the
    /// cross-domain LRU tie-break — and every slot's `job_idx`; each
    /// stream list arrives in per-domain LRU order, so every insert is
    /// an O(1) tail append.
    pub(crate) fn restore_state(&mut self, st: &ShardState) {
        self.table = StreamTable::new();
        self.metrics = st.metrics;
        self.clock = st.clock;
        self.last_sweep = st.last_sweep;
        self.jobs.clear();
        self.job_index.clear();
        self.job_clocks.clear();
        for &(job, m, wm) in &st.jobs {
            let i = u32::try_from(self.jobs.len()).expect("job count fits u32");
            self.job_index.insert(job, i);
            self.jobs.push((job, m));
            self.job_clocks.push(wm);
            self.table.ensure_domain(job);
        }
        self.model_stats.clone_from(&st.model_stats);
        self.job_models.clone_from(&st.job_models);
        for s in &st.streams {
            let job_idx = self.job_index[&s.key.job];
            let slot = self.rebuild_slot(s, job_idx);
            self.table.insert(s.key, s.last_seen, slot);
        }
    }

    /// Serializes one job's slice of this shard: its rollup and
    /// per-model counters (if the job ever ingested here), its time
    /// watermark, and its resident streams in LRU order.
    pub(crate) fn export_job_state(
        &self,
        job: JobId,
    ) -> (Option<JobMetrics>, Vec<ModelStats>, u64, Vec<StreamState>) {
        let metrics = self.job_index.get(&job).map(|&i| self.jobs[i as usize].1);
        let models = self
            .job_index
            .get(&job)
            .map(|&i| self.job_models[i as usize].clone())
            .unwrap_or_default();
        let mut streams = Vec::new();
        if let Some(d) = self.table.domain_for_job(job) {
            streams.reserve(self.table.domain_len(d));
            for id in self.table.domain_iter(d) {
                streams.push(self.export_stream(id));
            }
        }
        (metrics, models, self.job_now(job), streams)
    }

    /// Removes every trace of `job` from this shard — streams, rollup
    /// history, and watermark — returning how many streams left. Unlike
    /// [`Shard::evict_job`] this is a *move*, not an eviction: nothing
    /// counts toward `evicted`, and the job's historical counters are
    /// subtracted from the shard totals (they travel with the job), so
    /// shard totals stay the sum of the remaining rollups.
    pub(crate) fn extract_job(&mut self, job: JobId) -> usize {
        let Some(&ji) = self.job_index.get(&job) else {
            return 0;
        };
        let mut removed = 0;
        if let Some(d) = self.table.domain_for_job(job) {
            while let Some(id) = self.table.domain_oldest(d) {
                self.table.remove(id);
                removed += 1;
            }
        }
        let jm = std::mem::take(&mut self.jobs[ji as usize].1);
        self.job_clocks[ji as usize] = 0;
        subtract_job_counters(&mut self.metrics, &jm);
        // Per-model history travels with the job too: zero the job's
        // slab entry and subtract it from the shard totals.
        let models = std::mem::replace(
            &mut self.job_models[ji as usize],
            vec![ModelStats::default(); self.model_stats.len()],
        );
        for (tot, m) in self.model_stats.iter_mut().zip(&models) {
            tot.hits -= m.hits;
            tot.misses -= m.misses;
            tot.abstentions -= m.abstentions;
            tot.champion_events -= m.champion_events;
            tot.swaps_in -= m.swaps_in;
        }
        removed
    }

    /// Re-homes `job`'s streams into this shard: interns the rollup
    /// entry, folds the job clock up to `watermark`, and inserts the
    /// streams (arriving in LRU order — O(1) tail appends). The rollup's
    /// `resident_streams` grows by exactly the streams inserted *here*,
    /// so per-shard residency accounting (sweeps, evictions) stays
    /// exact; historical counters arrive separately via
    /// [`Shard::restore_job_history`].
    pub(crate) fn restore_job_streams(
        &mut self,
        job: JobId,
        streams: &[StreamState],
        watermark: u64,
    ) {
        if streams.is_empty() && watermark == 0 {
            return;
        }
        let ji = self.job_entry(job);
        self.job_clocks[ji as usize] = self.job_clocks[ji as usize].max(watermark);
        for s in streams {
            debug_assert_eq!(s.key.job, job, "stream routed to the wrong job");
            let slot = self.rebuild_slot(s, ji);
            self.table.insert(s.key, s.last_seen, slot);
            self.clock = self.clock.max(s.last_seen);
        }
        self.jobs[ji as usize].1.resident_streams += streams.len() as u64;
        self.metrics.resident_streams = self.table.len() as u64;
    }

    /// Folds `job`'s historical counters (minus residency, which
    /// [`Shard::restore_job_streams`] accounts per shard) into its
    /// rollup and the shard totals — the single-shard home for a
    /// migrated job's history, keeping federation-wide rollup sums
    /// exact across the move.
    pub(crate) fn restore_job_history(
        &mut self,
        job: JobId,
        metrics: &JobMetrics,
        models: &[ModelStats],
    ) {
        let ji = self.job_entry(job) as usize;
        let mut hist = *metrics;
        hist.resident_streams = 0;
        self.jobs[ji].1.merge(&hist);
        add_job_counters(&mut self.metrics, &hist);
        // check_config matched the rosters, so positions line up; the
        // resize only defends against a shorter local slab.
        if !models.is_empty() {
            let jm = &mut self.job_models[ji];
            if jm.len() < models.len() {
                jm.resize(models.len(), ModelStats::default());
            }
            if self.model_stats.len() < models.len() {
                self.model_stats.resize(models.len(), ModelStats::default());
            }
            for (i, m) in models.iter().enumerate() {
                jm[i].merge(m);
                self.model_stats[i].merge(m);
            }
        }
    }
}

/// Adds a job rollup's counters into shard totals (residency excluded —
/// it is tracked per shard by stream insertion/removal; transport
/// high-water marks have no per-job component).
fn add_job_counters(m: &mut ShardMetrics, j: &JobMetrics) {
    m.events_ingested += j.events_ingested;
    m.predictions_served += j.predictions_served;
    m.forecasts_served += j.forecasts_served;
    m.forecast_predictions += j.forecast_predictions;
    m.hits += j.hits;
    m.misses += j.misses;
    m.abstentions += j.abstentions;
    m.period_churn += j.period_churn;
    m.evicted += j.evicted;
}

/// Inverse of [`add_job_counters`]: a migrating job takes its history
/// with it.
fn subtract_job_counters(m: &mut ShardMetrics, j: &JobMetrics) {
    m.events_ingested -= j.events_ingested;
    m.predictions_served -= j.predictions_served;
    m.forecasts_served -= j.forecasts_served;
    m.forecast_predictions -= j.forecast_predictions;
    m.hits -= j.hits;
    m.misses -= j.misses;
    m.abstentions -= j.abstentions;
    m.period_churn -= j.period_churn;
    m.evicted -= j.evicted;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{StreamKey, StreamKind};

    fn key(rank: u32) -> StreamKey {
        StreamKey::new(rank, StreamKind::Sender)
    }

    fn feed_pattern(shard: &mut Shard, k: StreamKey, pattern: &[u64], cycles: usize) {
        for _ in 0..cycles {
            for &v in pattern {
                shard.observe(Observation::new(k, v));
            }
        }
    }

    #[test]
    fn shard_predicts_like_a_lone_predictor() {
        let mut shard = Shard::new(DpdConfig::default());
        feed_pattern(&mut shard, key(0), &[7, 1, 4], 12);
        let mut reference = DpdPredictor::new(DpdConfig::default());
        for _ in 0..12 {
            for v in [7u64, 1, 4] {
                reference.observe(v);
            }
        }
        for h in 1..=6 {
            // Interning maps {7,1,4} -> {0,1,2}; prediction maps back.
            assert_eq!(
                shard.predict(Query::new(key(0), h)),
                reference.predict(h as usize),
                "horizon {h}"
            );
        }
        assert_eq!(shard.period_of(key(0)), Some(3));
    }

    #[test]
    fn streams_are_isolated() {
        let mut shard = Shard::new(DpdConfig::default());
        feed_pattern(&mut shard, key(0), &[1, 2], 10);
        feed_pattern(&mut shard, key(1), &[5, 6, 7], 10);
        assert_eq!(shard.period_of(key(0)), Some(2));
        assert_eq!(shard.period_of(key(1)), Some(3));
        assert_eq!(shard.predict(Query::new(key(0), 1)), Some(1));
        assert_eq!(shard.predict(Query::new(key(1), 1)), Some(5));
        assert_eq!(shard.stream_count(), 2);
    }

    #[test]
    fn sender_and_size_streams_of_one_rank_are_distinct() {
        let mut shard = Shard::new(DpdConfig::default());
        let ks = StreamKey::new(9, StreamKind::Sender);
        let kz = StreamKey::new(9, StreamKind::Size);
        feed_pattern(&mut shard, ks, &[1, 2], 10);
        feed_pattern(&mut shard, kz, &[100, 200, 800], 10);
        assert_eq!(shard.period_of(ks), Some(2));
        assert_eq!(shard.period_of(kz), Some(3));
    }

    #[test]
    fn unknown_stream_and_zero_horizon_yield_none() {
        let mut shard = Shard::new(DpdConfig::default());
        assert_eq!(shard.predict(Query::new(key(3), 1)), None);
        feed_pattern(&mut shard, key(3), &[4, 5], 10);
        assert_eq!(shard.predict(Query::new(key(3), 0)), None);
    }

    #[test]
    fn metrics_score_online_hits() {
        let mut shard = Shard::new(DpdConfig::default());
        // 30 cycles of a period-2 pattern: once locked, every +1 forecast
        // is correct, earlier observations are abstentions.
        feed_pattern(&mut shard, key(0), &[8, 9], 30);
        let m = shard.metrics();
        assert_eq!(m.events_ingested, 60);
        assert!(m.hits >= 50, "locked stream should mostly hit: {m:?}");
        assert_eq!(m.misses, 0);
        assert!(m.abstentions >= 2, "cold start abstains");
        assert_eq!(m.resident_streams, 1);
        let rate = m.hit_rate().unwrap();
        assert!(rate > 0.8, "hit rate {rate}");
    }

    #[test]
    fn churn_counts_lock_transitions() {
        let mut shard = Shard::new(DpdConfig {
            window: 16,
            max_lag: 8,
            ..DpdConfig::default()
        });
        feed_pattern(&mut shard, key(0), &[1, 2], 10);
        let after_lock = shard.metrics().period_churn;
        assert!(after_lock >= 1, "lock acquisition counts as churn");
        // A corruption drops the exact-mode lock, then re-locks: more churn.
        shard.observe(Observation::new(key(0), 99));
        feed_pattern(&mut shard, key(0), &[1, 2], 12);
        assert!(shard.metrics().period_churn > after_lock);
    }

    #[test]
    fn observe_indexed_tracks_queue_depth() {
        let mut shard = Shard::new(DpdConfig::default());
        let batch: Vec<Observation> = (0..5).map(|i| Observation::new(key(0), i % 2)).collect();
        let idx: Vec<u32> = (0..5).collect();
        shard.observe_indexed_at(&batch, &idx, 0);
        assert_eq!(shard.metrics().max_batch_depth, 5);
        assert_eq!(shard.metrics().events_ingested, 5);
        shard.observe_indexed_at(&batch, &idx[..2], 5);
        assert_eq!(
            shard.metrics().max_batch_depth,
            5,
            "depth is a high-water mark"
        );
    }

    #[test]
    fn memoized_batch_ingest_equals_per_event_ingest() {
        // Runs of one stream (memo hits) interleaved with switches
        // (memo misses): both ingest paths must agree exactly.
        let mut batch = Vec::new();
        for i in 0..120u64 {
            let r = if i % 10 < 7 { 0 } else { (i % 3) as u32 + 1 };
            batch.push(Observation::new(key(r), i % 4));
        }
        let mut batched = Shard::new(DpdConfig::default());
        batched.observe_all_at(&batch, 0);
        let mut single = Shard::new(DpdConfig::default());
        for (i, obs) in batch.iter().enumerate() {
            single.observe_at(*obs, i as u64 + 1);
        }
        for r in 0..4 {
            for h in 1..=4 {
                assert_eq!(
                    batched.predict_at(Query::new(key(r), h), 120),
                    single.predict_at(Query::new(key(r), h), 120),
                    "rank {r} horizon {h}"
                );
            }
        }
        // Identical scoring; only the batch-depth high-water mark may
        // differ between one big batch and per-event ingestion.
        let mut bm = batched.metrics();
        bm.max_batch_depth = 0;
        let mut sm = single.metrics();
        sm.max_batch_depth = 0;
        assert_eq!(bm, sm);
        assert_eq!(batched.lru_oldest(4), single.lru_oldest(4));
    }

    #[test]
    fn clear_streams_keeps_counters() {
        let mut shard = Shard::new(DpdConfig::default());
        feed_pattern(&mut shard, key(0), &[1, 2], 5);
        let ingested = shard.metrics().events_ingested;
        shard.clear_streams();
        assert_eq!(shard.stream_count(), 0);
        assert_eq!(shard.metrics().events_ingested, ingested);
        assert_eq!(shard.metrics().resident_streams, 0);
        assert_eq!(shard.resident_jobs(), Vec::<JobId>::new());
    }

    #[test]
    fn ttl_masks_predictions_and_restarts_streams_cold() {
        let mut shard = Shard::with_ttl(DpdConfig::default(), Some(10));
        feed_pattern(&mut shard, key(0), &[1, 2], 10); // events 1..=20
        assert_eq!(shard.predict_at(Query::new(key(0), 1), 20), Some(1));
        // Within TTL the lock still serves.
        assert_eq!(shard.predict_at(Query::new(key(0), 1), 30), Some(1));
        // Past the TTL the stream is logically evicted.
        assert_eq!(shard.predict_at(Query::new(key(0), 1), 31), None);
        assert_eq!(shard.period_of_at(key(0), 31), None);
        // A new observation restarts it cold (abstention, no period).
        let before = shard.metrics();
        shard.observe_at(Observation::new(key(0), 1), 31);
        let after = shard.metrics();
        assert_eq!(after.evicted, before.evicted + 1);
        assert_eq!(after.abstentions, before.abstentions + 1);
        assert_eq!(shard.period_of_at(key(0), 31), None, "cold restart");
    }

    #[test]
    fn sweep_reclaims_exactly_the_expired_streams() {
        use crate::types::DEFAULT_JOB;
        let mut shard = Shard::with_ttl(DpdConfig::default(), Some(5));
        shard.observe_at(Observation::new(key(0), 1), 1);
        shard.observe_at(Observation::new(key(1), 1), 2);
        // The sweep ages streams against the job's watermark, which the
        // caller advances with its fresher reading of the job clock.
        shard.fold_job_now(DEFAULT_JOB, 6);
        assert_eq!(shard.sweep_expired(6), 0, "gap 5 <= ttl keeps key 0");
        shard.fold_job_now(DEFAULT_JOB, 7);
        assert_eq!(shard.sweep_expired(7), 1, "gap 6 > ttl evicts key 0");
        assert_eq!(shard.stream_count(), 1);
        assert_eq!(shard.metrics().evicted, 1);
        // Folding never moves a watermark backwards.
        shard.fold_job_now(DEFAULT_JOB, 3);
        assert_eq!(shard.job_now(DEFAULT_JOB), 7);
        // Unknown jobs have no watermark to fold into.
        shard.fold_job_now(42, 100);
        assert_eq!(shard.job_now(42), 0);
        // Without a TTL, sweeping is a no-op.
        let mut none = Shard::new(DpdConfig::default());
        none.observe_at(Observation::new(key(0), 1), 1);
        none.fold_job_now(DEFAULT_JOB, 1_000_000);
        assert_eq!(none.sweep_expired(1_000_000), 0);
    }

    #[test]
    fn sweeps_age_each_job_in_its_own_time() {
        // The cross-tenant TTL bug, pinned at the shard level: job A
        // floods while job B sits idle. B's streams must survive any
        // amount of A-traffic — only B's own clock can expire them.
        let ka = StreamKey::for_job(1, 0, StreamKind::Sender);
        let kb = StreamKey::for_job(2, 0, StreamKind::Sender);
        let mut shard = Shard::with_ttl(DpdConfig::default(), Some(10));
        shard.observe_at(Observation::new(kb, 5), 1); // B's job time: 1
                                                      // A floods: 10_000 events of job-A time.
        for t in 1..=10_000u64 {
            shard.observe_at(Observation::new(ka, t % 4), t);
        }
        assert_eq!(shard.sweep_expired(10_000), 0, "A's flood expires nothing");
        assert_eq!(shard.stream_count(), 2);
        // B is still servable in its own time...
        assert_eq!(shard.period_of_at(kb, shard.job_now(2)), None); // 1 obs: no lock yet
        assert!(shard.table.get(kb).is_some());
        // ...until B's *own* clock moves past the TTL.
        shard.fold_job_now(2, 12);
        assert_eq!(shard.sweep_expired(10_000), 1, "B expires in B-time only");
        assert_eq!(shard.stream_count(), 1);
        assert!(shard.table.get(kb).is_none());
        assert!(shard.table.get(ka).is_some(), "A was never touched");
    }

    #[test]
    fn sweep_timing_cannot_change_predictions() {
        // Same event sequence; one bank sweeps aggressively, one never.
        let drive = |sweep: bool| -> (Option<u64>, ShardMetrics) {
            let mut shard = Shard::with_ttl(DpdConfig::default(), Some(4));
            let mut at = 0;
            for _ in 0..10 {
                for v in [3u64, 9] {
                    at += 1;
                    shard.observe_at(Observation::new(key(0), v), at);
                }
            }
            at += 20; // long idle gap: the stream expires
            if sweep {
                shard.fold_job_now(crate::types::DEFAULT_JOB, at);
                shard.sweep_expired(at);
            }
            for v in [3u64, 9, 3, 9, 3, 9] {
                at += 1;
                shard.observe_at(Observation::new(key(0), v), at);
            }
            (shard.predict_at(Query::new(key(0), 1), at), shard.metrics())
        };
        let (swept_p, swept_m) = drive(true);
        let (lazy_p, lazy_m) = drive(false);
        assert_eq!(swept_p, lazy_p);
        assert_eq!(swept_m, lazy_m, "sweeps are metrics-invisible too");
        assert_eq!(swept_m.evicted, 1);
    }

    #[test]
    fn job_rollups_track_each_namespace_separately() {
        let mut shard = Shard::new(DpdConfig::default());
        let ka = StreamKey::for_job(1, 0, StreamKind::Sender);
        let kb = StreamKey::for_job(2, 0, StreamKind::Sender);
        feed_pattern(&mut shard, ka, &[1, 2], 10);
        feed_pattern(&mut shard, kb, &[5, 6, 7], 4);
        shard.predict(Query::new(ka, 1));
        assert_eq!(shard.resident_jobs(), vec![1, 2]);
        let jobs = shard.job_metrics();
        assert_eq!(jobs.len(), 2);
        let (ja, ma) = jobs[0];
        let (jb, mb) = jobs[1];
        assert_eq!((ja, jb), (1, 2));
        assert_eq!(ma.events_ingested, 20);
        assert_eq!(mb.events_ingested, 12);
        assert_eq!(ma.resident_streams, 1);
        assert_eq!(ma.predictions_served, 1);
        assert_eq!(mb.predictions_served, 0);
        assert!(ma.hits > mb.hits, "longer training, more hits");
        // Shard totals equal the sum of the job rollups.
        let total = shard.metrics();
        assert_eq!(
            total.events_ingested,
            ma.events_ingested + mb.events_ingested
        );
        assert_eq!(total.hits, ma.hits + mb.hits);
        assert_eq!(total.abstentions, ma.abstentions + mb.abstentions);
    }

    #[test]
    fn forecast_counts_one_served_forecast_not_per_horizon_predicts() {
        let mut shard = Shard::new(DpdConfig::default());
        let job = 3u32;
        for _ in 0..15 {
            shard.observe(Observation::new(
                StreamKey::for_job(job, 0, StreamKind::Sender),
                7,
            ));
            shard.observe(Observation::new(
                StreamKey::for_job(job, 0, StreamKind::Size),
                512,
            ));
        }
        let mut out = Vec::new();
        shard.forecast_at(job, 0, 4, shard.clock, &mut out);
        assert_eq!(out, vec![(Some(7), Some(512)); 4]);
        let m = shard.metrics();
        assert_eq!(m.forecasts_served, 1, "one forecast call, one count");
        assert_eq!(m.forecast_predictions, 8, "2 streams x depth 4");
        assert_eq!(
            m.predictions_served, 0,
            "forecasts do not inflate the explicit-query counter"
        );
        let jm = shard.job_metrics();
        assert_eq!(jm[0].1.forecasts_served, 1);
        assert_eq!(jm[0].1.forecast_predictions, 8);
        assert_eq!(jm[0].1.predictions_served, 0);
        // Unknown-job forecasts count on the shard but materialise no
        // phantom rollup entry.
        shard.forecast_at(99, 0, 2, shard.clock, &mut out);
        assert_eq!(out, vec![(None, None); 2]);
        assert_eq!(shard.metrics().forecasts_served, 2);
        assert_eq!(shard.job_metrics().len(), 1);
    }

    #[test]
    fn evict_job_reclaims_only_that_namespace_and_keeps_history() {
        let mut shard = Shard::new(DpdConfig::default());
        feed_pattern(
            &mut shard,
            StreamKey::for_job(1, 0, StreamKind::Sender),
            &[1, 2],
            5,
        );
        feed_pattern(
            &mut shard,
            StreamKey::for_job(1, 0, StreamKind::Size),
            &[64],
            5,
        );
        feed_pattern(
            &mut shard,
            StreamKey::for_job(2, 0, StreamKind::Sender),
            &[9],
            5,
        );
        assert_eq!(shard.evict_job(1), 2);
        assert_eq!(shard.evict_job(1), 0, "already gone");
        assert_eq!(shard.stream_count(), 1);
        assert_eq!(shard.resident_jobs(), vec![2]);
        let jobs = shard.job_metrics();
        assert_eq!(jobs[0].0, 1, "evicted job keeps its rollup history");
        assert_eq!(jobs[0].1.events_ingested, 15);
        assert_eq!(jobs[0].1.evicted, 2);
        assert_eq!(jobs[0].1.resident_streams, 0);
        // TTL sweeps attribute evictions to the owning job too.
        let mut ttl_shard = Shard::with_ttl(DpdConfig::default(), Some(2));
        ttl_shard.observe_at(
            Observation::new(StreamKey::for_job(4, 0, StreamKind::Tag), 1),
            1,
        );
        ttl_shard.fold_job_now(4, 10);
        assert_eq!(ttl_shard.sweep_expired(10), 1);
        assert_eq!(ttl_shard.job_metrics()[0].1.evicted, 1);
    }

    #[test]
    fn forced_eviction_and_lru_order() {
        let mut shard = Shard::new(DpdConfig::default());
        shard.observe_at(Observation::new(key(0), 1), 1);
        shard.observe_at(Observation::new(key(1), 1), 2);
        shard.observe_at(Observation::new(key(2), 1), 3);
        shard.observe_at(Observation::new(key(0), 2), 4); // key 0 refreshed
        let oldest = shard.lru_oldest(2);
        assert_eq!(oldest[0].1, key(1), "least recently observed first");
        assert_eq!(oldest[1].1, key(2));
        assert_eq!(shard.evict_lru(2), 2);
        assert_eq!(shard.stream_count(), 1);
        assert!(shard.evict_stream(key(0)));
        assert!(!shard.evict_stream(key(0)), "already gone");
        assert_eq!(shard.metrics().evicted, 3);
    }

    #[test]
    fn default_shard_has_no_ensemble_state() {
        let mut shard = Shard::new(DpdConfig::default());
        feed_pattern(&mut shard, key(0), &[1, 2], 10);
        assert!(shard.model_stats().is_empty());
        assert_eq!(shard.job_model_stats().len(), 1);
        assert!(shard.job_model_stats()[0].1.is_empty());
        assert!(!shard.ensemble().enabled());
    }

    #[test]
    fn ensemble_swaps_to_a_better_challenger_and_serves_it() {
        // An arithmetic stream: every value is new, so the DPD (which
        // needs repeats) can never lock, while the stride challenger
        // nails every step. The champion must swap to stride and
        // serve its raw-space extrapolations.
        let ens = EnsembleConfig {
            challengers: vec![PredictorKind::Stride],
            window: 16,
            min_lead: 4,
        };
        let mut shard = Shard::with_ensemble(DpdConfig::default(), None, ens);
        for i in 0..200u64 {
            shard.observe(Observation::new(key(0), 1000 + 10 * i));
        }
        // Stride extrapolates a value never observed (and never
        // interned) — only a raw-space challenger can produce it.
        assert_eq!(shard.predict(Query::new(key(0), 1)), Some(1000 + 10 * 200));
        let ms = shard.model_stats();
        assert_eq!(ms.len(), 2, "primary + one challenger");
        assert_eq!(ms[1].swaps_in, 1, "one sustained-lead swap");
        assert!(ms[1].hits > ms[0].hits, "stride outscores the DPD");
        // Every member is scored on every event.
        for m in &ms {
            assert_eq!(m.hits + m.misses + m.abstentions, 200);
        }
        // Champion-event split covers the whole stream: the DPD served
        // the first window, stride everything after the swap.
        assert_eq!(ms[0].champion_events + ms[1].champion_events, 200);
        assert!(ms[1].champion_events > ms[0].champion_events);
        // The per-job rollup mirrors the shard slab (one job here).
        assert_eq!(shard.job_model_stats()[0].1, ms);
    }

    #[test]
    fn ensemble_with_dpd_champion_scores_like_the_legacy_path() {
        // On a periodic stream the DPD stays champion (challenger list
        // has no sustained lead), and the legacy hit/miss counters must
        // be driven by the same primary outcomes as a DPD-only shard.
        let ens = EnsembleConfig {
            challengers: vec![PredictorKind::Frequency],
            window: 32,
            min_lead: 8,
        };
        let mut with_ens = Shard::with_ensemble(DpdConfig::default(), None, ens);
        let mut plain = Shard::new(DpdConfig::default());
        for s in [&mut with_ens, &mut plain] {
            feed_pattern(s, key(0), &[7, 1, 4], 20);
        }
        let (me, mp) = (with_ens.metrics(), plain.metrics());
        assert_eq!(me.hits, mp.hits);
        assert_eq!(me.misses, mp.misses);
        assert_eq!(me.abstentions, mp.abstentions);
        assert_eq!(
            with_ens.predict(Query::new(key(0), 1)),
            plain.predict(Query::new(key(0), 1))
        );
        assert_eq!(with_ens.model_stats()[0].swaps_in, 0);
    }

    #[test]
    fn lru_order_survives_re_observation_and_slot_reuse() {
        // Satellite pin: re-observing moves a stream to the back of the
        // victim order, and a stream re-created into a *reused* slab
        // slot is ordered by its new stamp, not its slot index.
        let mut shard = Shard::new(DpdConfig::default());
        shard.observe_at(Observation::new(key(0), 1), 1);
        shard.observe_at(Observation::new(key(1), 1), 2);
        shard.observe_at(Observation::new(key(2), 1), 3);
        // Re-observe the oldest: victim order rotates.
        shard.observe_at(Observation::new(key(0), 1), 4);
        assert_eq!(
            shard
                .lru_oldest(3)
                .iter()
                .map(|&(_, k)| k)
                .collect::<Vec<_>>(),
            vec![key(1), key(2), key(0)]
        );
        // Evict + re-create: key 1's slot is freed and reused, but its
        // recency is the fresh stamp.
        assert!(shard.evict_stream(key(1)));
        shard.observe_at(Observation::new(key(3), 1), 5); // reuses the freed slot
        shard.observe_at(Observation::new(key(1), 1), 6); // grows or reuses
        assert_eq!(
            shard
                .lru_oldest(4)
                .iter()
                .map(|&(_, k)| k)
                .collect::<Vec<_>>(),
            vec![key(2), key(0), key(3), key(1)]
        );
        assert_eq!(shard.stream_count(), 4);
    }
}
