//! # mpp-engine — sharded multi-stream prediction serving
//!
//! The paper predicts *one* process's message streams with a Dynamic
//! Periodicity Detector. Serving that prediction at production scale —
//! every rank of every job, sender + size + tag streams, millions of
//! concurrent streams — needs an engine, not a per-call factory. This
//! crate is that serving layer: it owns a bank of per-`(rank,
//! stream-kind)` [`DpdPredictor`](mpp_core::dpd::DpdPredictor)s behind
//! a symbol-interning layer, shards them across worker threads by rank
//! hash, and exposes batched, zero-allocation observe/predict APIs.
//!
//! Two execution modes share one semantics:
//!
//! * [`PersistentEngine`] — **the default serving mode**: one
//!   long-lived worker thread per shard, fed over crossbeam channels
//!   through per-thread [`EngineClient`]s (lock-free submission,
//!   epoch-stamped replies, graceful shutdown on drop).
//! * [`Engine`] — the scoped mode: shards live in the caller's value
//!   and worker threads are spawned per batch. It doubles as the
//!   sequential reference the persistent mode is property-tested
//!   against.
//!
//! Three properties are load-bearing and tested:
//!
//! 1. **Prediction equivalence.** For any shard count, batch split,
//!    and execution mode, the engine's predictions are bit-identical
//!    to driving one `DpdPredictor` per stream sequentially
//!    (`tests/equivalence.rs`, `tests/persistence.rs`). Sharding and
//!    worker threads are throughput devices, never semantics devices.
//! 2. **Deterministic eviction.** Idle streams expire after a
//!    configurable TTL ([`EngineConfig::ttl`], measured in engine-time
//!    events) and restart cold — with results independent of *when*
//!    memory-reclamation sweeps run, so the persistent workers can
//!    sweep opportunistically (see the [`shard`] docs for the
//!    argument). Forced eviction is globally LRU by last-observed
//!    event index.
//! 3. **Allocation-lean steady state.** On the ingest hot path, the
//!    scoped engine allocates nothing (preallocated per-shard index
//!    scratch) and the persistent engine recycles its cross-thread leg
//!    buffers through a return channel; predictors reuse their fixed
//!    [`Ring`](mpp_core::ring::Ring) buffers and prediction output
//!    lands in caller-provided, capacity-reused vectors. Query calls
//!    on the persistent path do allocate small per-call leg/reply
//!    structures — they are re-plan-rate, not event-rate. Client leg
//!    pools are bounded (entry count and per-buffer capacity), so a
//!    one-off burst cannot pin its peak footprint forever.
//! 4. **Deterministic backpressure.** With
//!    [`EngineConfig::observe_queue_cap`] set, each persistent shard's
//!    command lane is bounded; a full lane either blocks the submitter
//!    ([`BackpressurePolicy::Block`] — bit-identical to unbounded
//!    ingestion, proven in `tests/backpressure.rs`) or sheds the leg
//!    with exact accounting ([`BackpressurePolicy::Shed`]). Pressure is
//!    visible per shard (`queue_high_water` / `send_blocked` /
//!    `shed_events`) and per call ([`ObserveOutcome`]).
//!
//! ## Module map
//!
//! * [`types`] — [`StreamKey`] addressing (`job` × `rank` ×
//!   sender/size/tag), plain-old-data [`Observation`] / [`Query`]
//!   batch elements.
//! * [`stream_table`] — [`StreamTable`]: the slab-backed key→slot
//!   layer (fxhash-interned keys, free-list slot reuse, intrusive
//!   last-seen-sorted LRU) that keeps per-event bookkeeping to at most
//!   one cheap hash and makes eviction cost independent of the
//!   resident-set size.
//! * [`shard`] — [`Shard`]: single-threaded predictor bank with
//!   interning, online `+1` hit/miss scoring, period-churn tracking,
//!   per-job rollups, and the TTL/eviction rule.
//! * [`engine`] — [`Engine`]: scoped-mode `(job, rank)`-hash sharding,
//!   batched [`observe_batch`](Engine::observe_batch) /
//!   [`predict_batch`](Engine::predict_batch).
//! * [`persistent`] — [`PersistentEngine`] / [`EngineClient`]:
//!   persistent shard workers behind channels.
//! * [`federation`] — [`FederatedEngine`] / [`FederatedClient`]:
//!   multi-engine router partitioning traffic by job, with
//!   deterministic pinning, per-job eviction/metrics across members,
//!   and the adaptive observe-lane capacity policy.
//! * [`metrics`] — [`ShardMetrics`] / [`JobMetrics`] /
//!   [`EngineMetrics`]: events ingested, hit/miss/abstention, period
//!   churn, resident/evicted streams, queue depth — per shard and per
//!   job.
//!
//! ## Quick start
//!
//! ```
//! use mpp_engine::{EngineConfig, Observation, PersistentEngine, StreamKey, StreamKind};
//!
//! let engine = PersistentEngine::new(EngineConfig::with_shards(4));
//! let client = engine.client();
//! // Rank 0 receives from senders 7, 1, 4 cyclically.
//! let key = StreamKey::new(0, StreamKind::Sender);
//! let batch: Vec<Observation> = (0..30)
//!     .map(|i| Observation::new(key, [7u64, 1, 4][i % 3]))
//!     .collect();
//! client.observe_batch(&batch);
//! assert_eq!(client.predict(key, 1), Some(7));
//! assert_eq!(client.predict(key, 2), Some(1));
//! assert_eq!(client.period_of(key), Some(3));
//! assert!(client.metrics_total().hit_rate().unwrap() > 0.5);
//! // Dropping the last handle/client joins the workers.
//! ```

pub mod engine;
pub mod federation;
pub mod metrics;
pub mod oplog;
pub mod persistent;
pub mod rebalance;
pub mod shard;
pub mod snapshot;
pub mod stream_table;
pub(crate) mod telemetry;
pub mod types;

pub use engine::{BackpressurePolicy, Engine, EngineConfig, EnsembleConfig};
pub use federation::{
    AdaptiveCapacity, EpochCapacity, FedRecoveryReport, FederatedClient, FederatedEngine,
    FederationConfig, FederationMetrics, FederationWorkerGone, MigrateError, QuiesceReport,
    RebalanceReport,
};
pub use metrics::{
    merge_job_model_rollups, merge_job_rollups, merge_model_stats, EngineMetrics, JobMetrics,
    ModelStats, ShardMetrics,
};
pub use oplog::{DurabilityConfig, FlushPolicy, WalError, WAL_MAGIC, WAL_VERSION};
pub use persistent::{
    EngineClient, ObserveOutcome, PersistentEngine, RecoverError, RecoveryReport, SpawnError,
    WorkerGone,
};
pub use rebalance::{
    JobLoad, MemberLoad, PlannedMove, RebalanceConfig, RebalancePlan, RebalanceSnapshot, Rebalancer,
};
pub use shard::Shard;
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use stream_table::{SlotId, StreamTable};
pub use types::{JobId, Observation, Query, RankId, StreamKey, StreamKind, DEFAULT_JOB};
// Telemetry vocabulary re-exported so engine consumers need not depend
// on mpp-telemetry directly.
pub use mpp_telemetry::{
    FlightEvent, FlightKind, HistogramSnapshot, TelemetryConfig, TelemetrySnapshot,
};
