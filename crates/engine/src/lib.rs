//! # mpp-engine — sharded multi-stream prediction serving
//!
//! The paper predicts *one* process's message streams with a Dynamic
//! Periodicity Detector. Serving that prediction at production scale —
//! every rank of every job, sender + size + tag streams, millions of
//! concurrent streams — needs an engine, not a per-call factory. This
//! crate is that serving layer: it owns a bank of per-`(rank,
//! stream-kind)` [`DpdPredictor`](mpp_core::dpd::DpdPredictor)s behind
//! a symbol-interning layer, shards them across worker threads by rank
//! hash, and exposes batched, zero-allocation observe/predict APIs.
//!
//! Two properties are load-bearing and tested:
//!
//! 1. **Prediction equivalence.** For any shard count and batch
//!    split, the engine's predictions are bit-identical to driving one
//!    `DpdPredictor` per stream sequentially (`tests/equivalence.rs`).
//!    Sharding is a throughput device, never a semantics device.
//! 2. **Zero-allocation steady state.** Batch ingest reuses per-shard
//!    index scratch; predictors reuse their fixed
//!    [`Ring`](mpp_core::ring::Ring) buffers; prediction output lands
//!    in a caller-provided, capacity-reused vector. Allocation happens
//!    only when a new stream or new raw symbol first appears.
//!
//! ## Module map
//!
//! * [`types`] — [`StreamKey`] addressing (`rank` × sender/size/tag),
//!   plain-old-data [`Observation`] / [`Query`] batch elements.
//! * [`shard`] — [`Shard`]: single-threaded predictor bank with
//!   interning, online `+1` hit/miss scoring, and period-churn
//!   tracking.
//! * [`engine`] — [`Engine`]: rank-hash sharding, batched
//!   [`observe_batch`](Engine::observe_batch) /
//!   [`predict_batch`](Engine::predict_batch), scoped worker threads,
//!   per-rank (sender, size) forecasts for the runtime policies.
//! * [`metrics`] — [`ShardMetrics`] / [`EngineMetrics`]: events
//!   ingested, hit/miss/abstention, period churn, queue depth.
//!
//! ## Quick start
//!
//! ```
//! use mpp_engine::{Engine, EngineConfig, Observation, StreamKey, StreamKind};
//!
//! let mut engine = Engine::new(EngineConfig::with_shards(4));
//! // Rank 0 receives from senders 7, 1, 4 cyclically.
//! let key = StreamKey::new(0, StreamKind::Sender);
//! let batch: Vec<Observation> = (0..30)
//!     .map(|i| Observation::new(key, [7u64, 1, 4][i % 3]))
//!     .collect();
//! engine.observe_batch(&batch);
//! assert_eq!(engine.predict(key, 1), Some(7));
//! assert_eq!(engine.predict(key, 2), Some(1));
//! assert_eq!(engine.period_of(key), Some(3));
//! assert!(engine.metrics_total().hit_rate().unwrap() > 0.5);
//! ```

pub mod engine;
pub mod metrics;
pub mod shard;
pub mod types;

pub use engine::{Engine, EngineConfig};
pub use metrics::{EngineMetrics, ShardMetrics};
pub use shard::Shard;
pub use types::{Observation, Query, RankId, StreamKey, StreamKind};
