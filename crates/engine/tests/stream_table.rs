//! Differential proptests for the slab-backed stream table: the slab +
//! intrusive-LRU implementation must be observably identical to the
//! plain `HashMap` bookkeeping it replaced — under TTL expiry, forced
//! (LRU) eviction, job eviction, re-observation (touch order), and
//! free-list slot reuse.
//!
//! Two layers are pinned:
//!
//! * [`StreamTable`] directly against a `HashMap<StreamKey, u64>`
//!   recency model (insert/touch/remove/retain/window ops, including
//!   out-of-order stamps, which exercise the sorted re-insertion path);
//! * [`Shard`] against a per-stream reference bank implementing the old
//!   semantics by hand (lazy TTL reset, collect-and-sort LRU victims,
//!   per-job eviction accounting).

use mpp_core::dpd::{DpdConfig, DpdPredictor};
use mpp_core::predictors::Predictor;
use mpp_engine::{JobId, Observation, Query, Shard, StreamKey, StreamKind, StreamTable};
use proptest::prelude::*;
use std::collections::HashMap;

/// The canonical LRU victim order (the one the engine sorts by):
/// oldest stamp first, ties broken by `(rank, kind)`. Keys here are
/// single-job, so the order is total.
fn reference_victims(
    all: impl Iterator<Item = (u64, StreamKey)>,
    n: usize,
) -> Vec<(u64, StreamKey)> {
    let mut v: Vec<(u64, StreamKey)> = all.collect();
    v.sort_unstable_by_key(|&(seen, key)| (seen, key.rank, key.kind.index()));
    v.truncate(n);
    v
}

fn decode_key(rank: u32, kind: u8) -> StreamKey {
    StreamKey::new(rank % 8, StreamKind::ALL[kind as usize % 3])
}

fn decode_job_key(job: u32, rank: u32, kind: u8) -> StreamKey {
    StreamKey::for_job(job % 3, rank % 4, StreamKind::ALL[kind as usize % 3])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// StreamTable == HashMap recency model for any op sequence,
    /// including out-of-order stamps and heavy slot reuse.
    #[test]
    fn table_matches_hashmap_model(
        raw_ops in prop::collection::vec(
            (0u8..8, 0u32..8, 0u8..3, 0u64..5, 0u8..6), 1..120),
    ) {
        let mut table: StreamTable<u64> = StreamTable::new();
        let mut model: HashMap<StreamKey, (u64, u64)> = HashMap::new(); // key -> (last_seen, payload)
        let mut clock = 0u64;
        let mut next_payload = 0u64;

        for &(sel, rank, kind, jitter, n) in &raw_ops {
            let key = decode_key(rank, kind);
            match sel {
                // Touch-or-insert with a mostly-monotone stamp; the
                // jitter occasionally files a touch *behind* the tail,
                // exercising the sorted re-insertion path.
                0..=4 => {
                    clock += 1;
                    let at = clock.saturating_sub(jitter * 2);
                    match table.get(key) {
                        Some(id) => {
                            table.touch(id, at);
                            model.get_mut(&key).expect("model in sync").0 = at;
                        }
                        None => {
                            next_payload += 1;
                            table.insert(key, at, next_payload);
                            model.insert(key, (at, next_payload));
                        }
                    }
                }
                5 => {
                    let got = table.remove_key(key);
                    let want = model.remove(&key).map(|(_, p)| p);
                    prop_assert_eq!(got, want, "remove disagrees on {:?}", key);
                }
                6 => {
                    // Drop every stream of one kind, both sides.
                    let kind = StreamKind::ALL[usize::from(n) % 3];
                    let removed = table.retain(|k, _| k.kind != kind);
                    let before = model.len();
                    model.retain(|k, _| k.kind != kind);
                    prop_assert_eq!(removed, before - model.len());
                }
                _ => {
                    // Victim-window probe: canonical selection over the
                    // bounded window == canonical selection over all.
                    let window = table.oldest_window(usize::from(n));
                    let got = reference_victims(window.into_iter(), usize::from(n));
                    let want = reference_victims(
                        model.iter().map(|(k, &(seen, _))| (seen, *k)),
                        usize::from(n),
                    );
                    prop_assert_eq!(got, want, "victim selection diverged");
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }

        // Final exhaustive checks: payloads, stamps, and recency order.
        for (key, &(seen, payload)) in &model {
            let id = table.get(*key).expect("every model key resident");
            prop_assert_eq!(table.last_seen(id), seen);
            prop_assert_eq!(*table.payload(id), payload);
            prop_assert_eq!(table.key_of(id), *key);
        }
        let stamps: Vec<u64> = table.iter().map(|id| table.last_seen(id)).collect();
        prop_assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "LRU list must stay sorted by last_seen: {:?}", stamps
        );
        let full = reference_victims(
            model.iter().map(|(k, &(seen, _))| (seen, *k)),
            model.len(),
        );
        let windowed = reference_victims(
            table.oldest_window(model.len()).into_iter(),
            model.len(),
        );
        prop_assert_eq!(windowed, full);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Out-of-order stamps are a contract, not an accident: when a
    /// reader's `now` trails a stream's `last_seen` (possible only
    /// when concurrent clients race stamp allocation against a
    /// query), the age saturates to 0 and the stream reads **fresh**
    /// — exactly what a reader at the stream's own stamp would see. A
    /// wrapping subtraction would instead report an astronomically
    /// old stream and expire live state. Pins `is_expired` (see
    /// `shard.rs`).
    #[test]
    fn racy_stamps_where_now_trails_last_seen_read_fresh(
        stamp in 1_000u64..u64::MAX / 2,
        behind in 0u64..1_000_000,
        ttl in 0u64..1_000,
        train in 4u64..24,
    ) {
        let cfg = DpdConfig { window: 32, max_lag: 8, ..DpdConfig::default() };
        let mut shard = Shard::with_ttl(cfg, Some(ttl));
        let key = StreamKey::new(0, StreamKind::Sender);
        // Train a period-2 stream whose last observation lands at
        // exactly `stamp`.
        for i in 0..train {
            shard.observe_at(Observation::new(key, i % 2), stamp - train + 1 + i);
        }
        let fresh = shard.predict_at(Query::new(key, 1), stamp);
        // A reader arbitrarily far *behind* the stamp sees the fresh
        // view — never an expiry the stream's own timeline refutes.
        let racy = shard.predict_at(Query::new(key, 1), stamp.saturating_sub(behind));
        prop_assert_eq!(racy, fresh, "stale reader diverged from fresh view");
        // The boundary is exact: age == ttl is still live, age ==
        // ttl + 1 is expired (the rule is `age > ttl`).
        prop_assert_eq!(shard.predict_at(Query::new(key, 1), stamp + ttl), fresh);
        prop_assert_eq!(
            shard.predict_at(Query::new(key, 1), stamp + ttl + 1),
            None,
            "a genuinely idle stream must still expire"
        );
    }
}

/// Per-stream reference slot implementing the pre-slab semantics.
struct RefSlot {
    predictor: DpdPredictor,
    last_seen: u64,
}

/// Reference bank: raw-symbol predictors in a `HashMap`, lazy TTL
/// reset, collect-and-sort LRU, per-job eviction counters — the old
/// `Shard` bookkeeping spelled out by hand.
struct RefBank {
    cfg: DpdConfig,
    ttl: Option<u64>,
    slots: HashMap<StreamKey, RefSlot>,
    evicted_by_job: HashMap<JobId, u64>,
    evicted_total: u64,
}

impl RefBank {
    fn new(cfg: DpdConfig, ttl: Option<u64>) -> Self {
        RefBank {
            cfg,
            ttl,
            slots: HashMap::new(),
            evicted_by_job: HashMap::new(),
            evicted_total: 0,
        }
    }

    fn expired(&self, last_seen: u64, now: u64) -> bool {
        matches!(self.ttl, Some(t) if now.saturating_sub(last_seen) > t)
    }

    fn observe(&mut self, obs: Observation, at: u64) {
        let cfg = &self.cfg;
        let ttl = self.ttl;
        let slot = self.slots.entry(obs.key).or_insert_with(|| RefSlot {
            predictor: DpdPredictor::new(cfg.clone()),
            last_seen: 0,
        });
        if slot.last_seen > 0 && matches!(ttl, Some(t) if at.saturating_sub(slot.last_seen) > t) {
            slot.predictor = DpdPredictor::new(cfg.clone());
            self.evicted_total += 1;
            *self.evicted_by_job.entry(obs.key.job).or_default() += 1;
        }
        slot.predictor.observe(obs.value);
        slot.last_seen = at;
    }

    fn predict(&self, key: StreamKey, horizon: u32, now: u64) -> Option<u64> {
        let slot = self.slots.get(&key)?;
        if self.expired(slot.last_seen, now) {
            return None;
        }
        slot.predictor.predict(horizon as usize)
    }

    fn note_evicted(&mut self, job: JobId, n: u64) {
        self.evicted_total += n;
        if n > 0 {
            *self.evicted_by_job.entry(job).or_default() += n;
        }
    }

    fn evict_stream(&mut self, key: StreamKey) -> bool {
        let hit = self.slots.remove(&key).is_some();
        if hit {
            self.note_evicted(key.job, 1);
        }
        hit
    }

    fn evict_job(&mut self, job: JobId) -> usize {
        let before = self.slots.len();
        self.slots.retain(|k, _| k.job != job);
        let removed = before - self.slots.len();
        self.note_evicted(job, removed as u64);
        removed
    }

    fn sweep(&mut self, now: u64) -> usize {
        let ttl = self.ttl;
        let mut removed_jobs: Vec<JobId> = Vec::new();
        self.slots.retain(|k, s| {
            let keep = !matches!(ttl, Some(t) if now.saturating_sub(s.last_seen) > t);
            if !keep {
                removed_jobs.push(k.job);
            }
            keep
        });
        for job in &removed_jobs {
            self.note_evicted(*job, 1);
        }
        removed_jobs.len()
    }

    fn lru_oldest(&self, n: usize) -> Vec<(u64, StreamKey)> {
        reference_victims(self.slots.iter().map(|(k, s)| (s.last_seen, *k)), n)
    }

    fn resident_jobs(&self) -> Vec<JobId> {
        let mut jobs: Vec<JobId> = self.slots.keys().map(|k| k.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        jobs
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shard == hand-written HashMap reference under interleaved
    /// observations (unique monotone stamps), TTL expiry, sweeps,
    /// forced single-stream eviction, LRU eviction, and job eviction —
    /// predictions, victim choices, per-job eviction accounting and
    /// residency all bit-identical.
    #[test]
    fn shard_matches_hashmap_reference(
        raw_ops in prop::collection::vec(
            (0u8..12, 0u32..3, 0u32..4, 0u8..3, 0u64..4, 0u8..5), 1..150),
        ttl_sel in 0u64..40,
    ) {
        let ttl = if ttl_sel < 10 { None } else { Some(ttl_sel) };
        let cfg = DpdConfig { window: 32, max_lag: 8, ..DpdConfig::default() };
        let mut shard = Shard::with_ttl(cfg.clone(), ttl);
        let mut reference = RefBank::new(cfg, ttl);
        let mut clock = 0u64;

        for &(sel, job, rank, kind, value, n) in &raw_ops {
            let key = decode_job_key(job, rank, kind);
            match sel {
                // Observation-heavy mix so streams train and expire.
                0..=6 => {
                    // Occasional large stamp jumps push streams past
                    // their TTL mid-sequence.
                    clock += 1 + u64::from(n) * ttl_sel / 3;
                    shard.observe_at(Observation::new(key, value), clock);
                    reference.observe(Observation::new(key, value), clock);
                }
                7 => {
                    prop_assert_eq!(
                        shard.evict_stream(key),
                        reference.evict_stream(key),
                        "evict_stream diverged on {:?}", key
                    );
                }
                8 => {
                    prop_assert_eq!(
                        shard.evict_job(key.job),
                        reference.evict_job(key.job),
                        "evict_job diverged on job {}", key.job
                    );
                }
                9 => {
                    // The reference models a single shared time domain;
                    // folding the driver clock into every job's
                    // watermark opts the shard into the same view
                    // (exactly what `Engine::sweep_expired` does with
                    // its job clocks before sweeping).
                    for j in 0..3u32 {
                        shard.fold_job_now(j, clock);
                    }
                    prop_assert_eq!(shard.sweep_expired(clock), reference.sweep(clock));
                }
                10 => {
                    let k = usize::from(n);
                    prop_assert_eq!(
                        shard.lru_oldest(k),
                        reference.lru_oldest(k),
                        "LRU victim order diverged"
                    );
                    let removed = shard.evict_lru(k);
                    let victims = reference.lru_oldest(k);
                    for (_, vkey) in &victims {
                        reference.evict_stream(*vkey);
                    }
                    prop_assert_eq!(removed, victims.len());
                }
                _ => {
                    for h in 1..=3u32 {
                        prop_assert_eq!(
                            shard.predict_at(Query::new(key, h), clock),
                            reference.predict(key, h, clock),
                            "prediction diverged on {:?} +{}", key, h
                        );
                    }
                }
            }
            prop_assert_eq!(shard.stream_count(), reference.slots.len());
        }

        // Final exhaustive comparison: predictions, LRU order over the
        // whole resident set, residency, and eviction accounting.
        for job in 0..3u32 {
            for rank in 0..4u32 {
                for kind in StreamKind::ALL {
                    let key = StreamKey::for_job(job, rank, kind);
                    for h in 1..=3u32 {
                        prop_assert_eq!(
                            shard.predict_at(Query::new(key, h), clock),
                            reference.predict(key, h, clock)
                        );
                    }
                }
            }
        }
        let all = shard.stream_count();
        prop_assert_eq!(shard.lru_oldest(all), reference.lru_oldest(all));
        prop_assert_eq!(shard.resident_jobs(), reference.resident_jobs());
        prop_assert_eq!(shard.metrics().evicted, reference.evicted_total);
        for (job, m) in shard.job_metrics() {
            prop_assert_eq!(
                m.evicted,
                reference.evicted_by_job.get(&job).copied().unwrap_or(0),
                "per-job eviction accounting diverged on job {}", job
            );
            let resident = reference.slots.keys().filter(|k| k.job == job).count() as u64;
            prop_assert_eq!(m.resident_streams, resident);
        }
    }
}
