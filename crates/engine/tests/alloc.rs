//! Steady-state allocation audit: once slots, interners and scratch
//! buffers are warm, repeated `observe_batch` + `forecast_at` rounds on
//! the scoped engine must allocate **nothing** — the "cheap enough for
//! the MPI critical path" claim (§2.1) made checkable. The audit runs
//! twice: with telemetry disabled and with it enabled, because the
//! telemetry layer's zero-cost claim is precisely that recording into
//! its fixed atomic histogram buckets and pre-allocated flight ring
//! adds clock reads, never allocations.
//!
//! A counting global allocator tallies every `alloc`/`realloc`. The
//! binary contains exactly this one test, so no concurrent test thread
//! can pollute the counter. The scoped engine is driven inline
//! (`parallel_threshold: usize::MAX`) because spawning scoped worker
//! threads allocates by design; the persistent mode's per-batch channel
//! legs are pool-recycled but its query replies allocate per call —
//! that path is documented as re-plan-rate, not event-rate, in the
//! crate docs.

use mpp_engine::{Engine, EngineConfig, Observation, StreamKey, StreamKind, TelemetryConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// The bench-shaped workload: every rank carries periodic sender, size
/// and tag streams, interleaved round-robin.
fn batch(ranks: u32) -> Vec<Observation> {
    let mut out = Vec::new();
    for step in 0..8usize {
        for rank in 0..ranks {
            let sp = 2 + (rank as usize % 5);
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Sender),
                ((step + rank as usize) % sp) as u64,
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Size),
                [512u64, 4096, 1 << 20][(step + rank as usize) % 3],
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Tag),
                (step % 2) as u64,
            ));
        }
    }
    out
}

/// Runs the warmup + measured rounds on one engine configuration and
/// asserts the measured rounds allocated exactly zero times.
fn audit_steady_state(telemetry: bool) {
    let events = batch(32);
    let mut cfg = EngineConfig {
        shards: 2,
        // Inline execution: scoped thread spawns allocate by design.
        parallel_threshold: usize::MAX,
        // A TTL exercises the expiry arithmetic and the (empty) sweep
        // pops on the hot path; the streams stay fresh, so nothing is
        // ever actually reclaimed mid-measurement.
        ttl: Some(1_000_000),
        ..EngineConfig::with_shards(2)
    };
    if telemetry {
        cfg = cfg.with_telemetry(TelemetryConfig::enabled());
    }
    let mut engine = Engine::new(cfg);
    let mut forecast = Vec::new();

    // Warm-up: create slots, grow interners, size every scratch buffer.
    for _ in 0..3 {
        engine.observe_batch(&events);
        for rank in 0..32 {
            engine.forecast_messages(rank, 5, &mut forecast);
        }
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..5 {
        engine.observe_batch(&events);
        for rank in 0..32 {
            engine.forecast_messages(rank, 5, &mut forecast);
            assert_eq!(forecast.len(), 5);
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state observe_batch + forecast_at must not allocate \
         (telemetry={telemetry})"
    );

    // Sanity: the engine really did the work.
    let total = engine.metrics_total();
    assert_eq!(total.events_ingested, 8 * events.len() as u64);
    assert_eq!(total.forecasts_served, 8 * 32);
    assert!(total.hits > 0);
    if telemetry {
        let snap = engine.telemetry().expect("telemetry enabled");
        let h = snap.histogram("observe_batch_ns").expect("batch latency");
        assert!(h.count() >= 16, "both shards timed all 8 rounds");
        assert!(
            snap.histogram("forecast_ns")
                .expect("forecast latency")
                .count()
                >= 8 * 32,
            "every forecast call was timed"
        );
    }
}

#[test]
fn steady_state_observe_and_forecast_allocate_nothing() {
    // Sequential phases inside one test: the counting allocator is
    // global, so the two audits must never run concurrently.
    audit_steady_state(false);
    audit_steady_state(true);
}
