//! The snapshot subsystem's load-bearing properties.
//!
//! * **Restore-and-continue is invisible.** For any workload, cut
//!   point, shard count and TTL, snapshotting an engine, restoring it
//!   (same mode or across scoped ↔ persistent), and replaying the
//!   rest of the workload yields predictions and scoring counters
//!   bit-identical to the uninterrupted run. Within the scoped mode
//!   the final snapshot *bytes* are identical too.
//! * **Job snapshots re-partition.** A single job's snapshot restores
//!   into an engine with a different shard count and serves the same
//!   predictions (stream placement is a throughput device).
//! * **Corruption fails typed, never garbled.** Version bumps, flipped
//!   bytes, truncation and config mismatches each surface their own
//!   [`SnapshotError`] variant; nothing restores partially.

use mpp_core::dpd::DpdConfig;
use mpp_engine::{
    Engine, EngineConfig, EnsembleConfig, Observation, PersistentEngine, Query, SnapshotError,
    StreamKey, StreamKind, SNAPSHOT_VERSION,
};
use proptest::prelude::*;

const JOBS: u32 = 3;
const RANKS: u32 = 5;
const HORIZONS: u32 = 4;

fn decode_event(job: u32, rank: u32, kind: u8, value: u64) -> Observation {
    Observation::new(
        StreamKey::for_job(job % JOBS, rank % RANKS, StreamKind::ALL[kind as usize % 3]),
        value % 6,
    )
}

/// Every possible (key, horizon) query in a fixed order.
fn all_queries() -> Vec<Query> {
    let mut out = Vec::new();
    for job in 0..JOBS {
        for rank in 0..RANKS {
            for kind in StreamKind::ALL {
                for h in 1..=HORIZONS {
                    out.push(Query::new(StreamKey::for_job(job, rank, kind), h));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: snapshot → restore → continue is
    /// bit-identical to never stopping, in and across both execution
    /// modes, for any cut point, shard count and TTL — and a job
    /// snapshot restored into a *different* shard count still serves
    /// the job's exact predictions.
    #[test]
    fn snapshot_restore_continue_is_bit_identical(
        raw in prop::collection::vec((0u32..JOBS, 0u32..RANKS, 0u8..3, 0u64..6), 1..250),
        cut_sel in 0usize..250,
        shards in 1usize..5,
        other_shards in 1usize..5,
        ttl_sel in 0u64..60,
    ) {
        let ttl = if ttl_sel < 20 { None } else { Some(ttl_sel) };
        let cfg = EngineConfig {
            shards,
            dpd: DpdConfig { window: 48, max_lag: 16, ..DpdConfig::default() },
            parallel_threshold: 0,
            ttl,
            ..EngineConfig::default()
        };
        let events: Vec<Observation> = raw
            .iter()
            .map(|&(j, r, k, v)| decode_event(j, r, k, v))
            .collect();
        let cut = cut_sel % (events.len() + 1);

        // Control: one scoped engine, never interrupted. One event per
        // batch everywhere so batch-shape metrics can't differ between
        // runs.
        let mut control = Engine::new(cfg.clone());
        for e in &events {
            control.observe_batch(std::slice::from_ref(e));
        }

        // Scoped trial: ingest to the cut, snapshot, restore, continue.
        let mut head = Engine::new(cfg.clone());
        for e in &events[..cut] {
            head.observe_batch(std::slice::from_ref(e));
        }
        let bytes = head.snapshot();
        let mut tail = Engine::restore(cfg.clone(), &bytes)
            .expect("a snapshot this engine just wrote must restore");
        for e in &events[cut..] {
            tail.observe_batch(std::slice::from_ref(e));
        }
        // Strongest form first: the final snapshots are byte-identical
        // (taken before any query mutates served counters).
        prop_assert_eq!(
            tail.snapshot(),
            control.snapshot(),
            "restored run's final snapshot diverged from the uninterrupted run"
        );

        // Persistent trial: same cut, snapshot via the client,
        // restore a fresh worker fleet from the bytes.
        let phead = PersistentEngine::new(cfg.clone());
        let pclient = phead.client();
        for e in &events[..cut] {
            pclient.observe_batch(std::slice::from_ref(e));
        }
        let pbytes = pclient.snapshot();
        let ptail = PersistentEngine::restore(cfg.clone(), &pbytes)
            .expect("persistent restore");
        let ptail_client = ptail.client();
        for e in &events[cut..] {
            ptail_client.observe_batch(std::slice::from_ref(e));
        }

        // Cross-mode restore: the scoped engine's snapshot boots a
        // persistent engine mid-workload (one wire format, one
        // semantics).
        let xtail = PersistentEngine::restore(cfg.clone(), &bytes)
            .expect("cross-mode restore");
        let xtail_client = xtail.client();
        for e in &events[cut..] {
            xtail_client.observe_batch(std::slice::from_ref(e));
        }

        // Sweep everything before comparing rollups: *when* expired
        // streams get reclaimed is legitimately mode-dependent (scoped
        // sweeps every shard per batch, persistent only busy shards),
        // so eviction/residency counters only align after a full
        // sweep. Predictions are sweep-invariant either way.
        control.sweep_expired();
        tail.sweep_expired();
        ptail_client.sweep_expired();
        xtail_client.sweep_expired();

        let queries = all_queries();
        let mut want = Vec::new();
        control.predict_batch(&queries, &mut want);
        let mut got = Vec::new();
        tail.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "scoped restore-and-continue diverged");
        ptail_client.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "persistent restore-and-continue diverged");
        xtail_client.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "cross-mode restore-and-continue diverged");

        // Scoring counters survive the cut exactly.
        let (cm, tm, pm) = (control.metrics_total(), tail.metrics_total(),
                            ptail_client.metrics_total());
        prop_assert_eq!(cm.events_ingested, events.len() as u64);
        prop_assert_eq!(tm.events_ingested, cm.events_ingested);
        prop_assert_eq!(pm.events_ingested, cm.events_ingested);
        prop_assert_eq!((tm.hits, tm.misses, tm.abstentions, tm.period_churn),
                        (cm.hits, cm.misses, cm.abstentions, cm.period_churn));
        prop_assert_eq!((pm.hits, pm.misses, pm.abstentions, pm.period_churn),
                        (cm.hits, cm.misses, cm.abstentions, cm.period_churn));
        prop_assert_eq!(control.job_metrics(), tail.job_metrics());
        prop_assert_eq!(control.job_metrics(), ptail_client.job_metrics());

        // Job scope: job 0's snapshot restores into a fresh engine
        // with a different shard count and serves its predictions
        // bit-identically (streams re-partition).
        let jbytes = control.snapshot_job(0);
        let mut fresh = Engine::new(EngineConfig { shards: other_shards, ..cfg });
        fresh.restore_job(&jbytes).expect("job restore across shard counts");
        let jqueries: Vec<Query> = queries.iter().copied()
            .filter(|q| q.key.job == 0).collect();
        let mut jwant = Vec::new();
        control.predict_batch(&jqueries, &mut jwant);
        fresh.predict_batch(&jqueries, &mut got);
        prop_assert_eq!(&got, &jwant, "re-partitioned job diverged");
        // `predictions_served` is counted only on shards that ingested
        // the job, so it legitimately depends on the shard layout —
        // normalize it out of the cross-layout comparison.
        let roll_of = |m: Vec<(u32, mpp_engine::JobMetrics)>| {
            m.into_iter().find(|&(j, _)| j == 0).map(|(_, mut m)| {
                m.predictions_served = 0;
                m
            })
        };
        prop_assert_eq!(roll_of(control.job_metrics()), roll_of(fresh.job_metrics()));
    }

    /// The ensemble extension of the acceptance property: with a full
    /// challenger roster running (including mid-window champion scores
    /// and challenger predictor state), snapshot → restore → continue
    /// is still bit-identical to never stopping — predictions, legacy
    /// counters, per-model rollups, and the final snapshot bytes all
    /// survive the cut, in and across both execution modes.
    #[test]
    fn ensemble_snapshot_restore_continue_is_bit_identical(
        raw in prop::collection::vec((0u32..JOBS, 0u32..RANKS, 0u8..3, 0u64..6), 1..250),
        cut_sel in 0usize..250,
        shards in 1usize..5,
        window in 4u32..24,
        min_lead in 1u32..5,
    ) {
        // A short window so cuts land mid-window often, exercising the
        // partial window_seen/window_hits round-trip.
        let cfg = EngineConfig {
            shards,
            dpd: DpdConfig { window: 48, max_lag: 16, ..DpdConfig::default() },
            parallel_threshold: 0,
            ensemble: EnsembleConfig { window, min_lead, ..EnsembleConfig::standard() },
            ..EngineConfig::default()
        };
        let events: Vec<Observation> = raw
            .iter()
            .map(|&(j, r, k, v)| decode_event(j, r, k, v))
            .collect();
        let cut = cut_sel % (events.len() + 1);

        let mut control = Engine::new(cfg.clone());
        for e in &events {
            control.observe_batch(std::slice::from_ref(e));
        }

        let mut head = Engine::new(cfg.clone());
        for e in &events[..cut] {
            head.observe_batch(std::slice::from_ref(e));
        }
        let bytes = head.snapshot();
        let mut tail = Engine::restore(cfg.clone(), &bytes)
            .expect("ensemble snapshot must restore");
        for e in &events[cut..] {
            tail.observe_batch(std::slice::from_ref(e));
        }
        prop_assert_eq!(
            tail.snapshot(),
            control.snapshot(),
            "ensemble restored run's final snapshot diverged"
        );

        // Cross-mode: the scoped snapshot boots a persistent fleet.
        let ptail = PersistentEngine::restore(cfg.clone(), &bytes)
            .expect("cross-mode ensemble restore");
        let pclient = ptail.client();
        for e in &events[cut..] {
            pclient.observe_batch(std::slice::from_ref(e));
        }

        let queries = all_queries();
        let mut want = Vec::new();
        control.predict_batch(&queries, &mut want);
        let mut got = Vec::new();
        tail.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "scoped ensemble restore diverged");
        pclient.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "persistent ensemble restore diverged");

        // Per-model rollups survive the cut exactly, in both modes.
        prop_assert_eq!(control.model_stats(), tail.model_stats());
        prop_assert_eq!(control.model_stats(), pclient.model_stats());
        prop_assert_eq!(control.job_model_stats(), tail.job_model_stats());
        prop_assert_eq!(control.job_model_stats(), pclient.job_model_stats());
        prop_assert_eq!(control.job_metrics(), tail.job_metrics());

        // An ensemble snapshot binds to its roster: restoring into a
        // DPD-only engine is a typed ConfigMismatch, never a misparse.
        let plain = EngineConfig { ensemble: EnsembleConfig::default(), ..cfg };
        prop_assert!(matches!(
            Engine::restore(plain, &bytes),
            Err(SnapshotError::ConfigMismatch(_))
        ));
    }
}

/// Builds a small trained engine and returns it with its snapshot.
fn trained_engine() -> (Engine, Vec<u8>) {
    let mut engine = Engine::new(EngineConfig {
        shards: 2,
        ttl: Some(100),
        parallel_threshold: 0,
        ..EngineConfig::default()
    });
    let batch: Vec<Observation> = (0..60)
        .map(|i| decode_event((i % 3) as u32, (i % 5) as u32, (i % 3) as u8, i))
        .collect();
    engine.observe_batch(&batch);
    let bytes = engine.snapshot();
    (engine, bytes)
}

/// A snapshot written by a newer format version is rejected with the
/// typed [`SnapshotError::VersionMismatch`] — found and supported
/// versions both reported — not misparsed.
#[test]
fn future_version_snapshot_fails_typed() {
    let (engine, mut bytes) = trained_engine();
    // The version field is the u32 after the 8-byte magic.
    let v = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(v, SNAPSHOT_VERSION);
    bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    match Engine::restore(engine.config().clone(), &bytes) {
        Err(SnapshotError::VersionMismatch { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

/// Every corruption class fails with its own variant: wrong magic,
/// flipped payload byte, truncation.
#[test]
fn corrupted_snapshots_fail_typed() {
    let (engine, bytes) = trained_engine();
    let cfg = engine.config().clone();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        Engine::restore(cfg.clone(), &bad_magic),
        Err(SnapshotError::BadMagic)
    ));

    let mut flipped = bytes.clone();
    let mid = 20 + (flipped.len() - 28) / 2; // inside the payload
    flipped[mid] ^= 0x01;
    assert!(matches!(
        Engine::restore(cfg.clone(), &flipped),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    assert!(matches!(
        Engine::restore(cfg.clone(), &bytes[..bytes.len() - 1]),
        Err(SnapshotError::Truncated { .. })
    ));

    let mut padded = bytes.clone();
    padded.push(0);
    assert!(matches!(
        Engine::restore(cfg, &padded),
        Err(SnapshotError::TrailingBytes { extra: 1, offset }) if offset == bytes.len()
    ));
}

/// Whole-engine snapshots bind to their configuration: restoring into
/// a different shard count or TTL is a [`SnapshotError::ConfigMismatch`],
/// reported before any state moves.
#[test]
fn config_mismatch_fails_before_restoring() {
    let (engine, bytes) = trained_engine();
    let cfg = engine.config().clone();

    let more_shards = EngineConfig {
        shards: cfg.shards + 1,
        ..cfg.clone()
    };
    match Engine::restore(more_shards, &bytes) {
        Err(SnapshotError::ConfigMismatch(msg)) => {
            assert!(msg.contains("shard"), "mismatch names the field: {msg}")
        }
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }

    let other_ttl = EngineConfig {
        ttl: Some(7),
        ..cfg
    };
    assert!(matches!(
        Engine::restore(other_ttl, &bytes),
        Err(SnapshotError::ConfigMismatch(_))
    ));

    // Persistent restore applies the same gate.
    let (engine2, bytes2) = trained_engine();
    let cfg2 = engine2.config().clone();
    assert!(matches!(
        PersistentEngine::restore(
            EngineConfig {
                shards: cfg2.shards + 1,
                ..cfg2
            },
            &bytes2
        ),
        Err(SnapshotError::ConfigMismatch(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Regression satellite of the durability PR: snapshot files that
    /// gained bytes — zero padding from a preallocating filesystem, or
    /// two frames concatenated by a botched copy — are rejected as
    /// [`SnapshotError::TrailingBytes`] whose `extra` counts exactly
    /// the surplus and whose `offset` names the first undecoded byte,
    /// never decoded partially and never a panic.
    #[test]
    fn padded_and_concatenated_snapshots_are_rejected_with_offsets(
        pad in 1usize..96,
        byte in 0u8..255,
    ) {
        let (engine, bytes) = trained_engine();
        let cfg = engine.config().clone();

        // Padding: any tail of repeated bytes after a valid frame.
        let mut padded = bytes.clone();
        padded.extend(std::iter::repeat_n(byte, pad));
        prop_assert_eq!(
            Engine::restore(cfg.clone(), &padded).err(),
            Some(SnapshotError::TrailingBytes {
                extra: pad,
                offset: bytes.len(),
            })
        );

        // Concatenation: a second full frame (or any prefix of one —
        // `pad` bytes of it) appended to the first.
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes[..pad.min(bytes.len())]);
        prop_assert_eq!(
            Engine::restore(cfg, &doubled).err(),
            Some(SnapshotError::TrailingBytes {
                extra: pad.min(bytes.len()),
                offset: bytes.len(),
            })
        );
    }
}
