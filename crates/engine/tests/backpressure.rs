//! Bounded observe lanes under pressure: the backpressure subsystem's
//! load-bearing properties.
//!
//! * **`Block` is semantics-free.** A bounded engine in `Block` mode is
//!   bit-identical to the unbounded engine and to the scoped sequential
//!   reference, for any shard count, batch split and queue capacity —
//!   bounding the lanes is purely a memory/pressure device (proptest
//!   below).
//! * **A slow shard cannot deadlock or corrupt.** With a tiny
//!   `observe_queue_cap` and one artificially stalled shard, concurrent
//!   writers finish (blocking, not deadlocking), metrics stay monotone,
//!   the lane never exceeds its cap, and hit/miss/abstention counters
//!   match a sequential single-shard run *exactly*.
//! * **`Shed` accounting is exact.** Every submitted event is counted
//!   exactly once as ingested or shed, and the per-call
//!   [`ObserveOutcome`]s sum to the per-shard `shed_events` metric.
//! * **Dead workers fail loudly.** A killed shard worker surfaces
//!   [`WorkerGone`] on submission and a prompt panic (never a hang) on
//!   the query/reply path.

use mpp_core::dpd::DpdConfig;
use mpp_engine::{
    BackpressurePolicy, Engine, EngineConfig, EngineMetrics, Observation, ObserveOutcome,
    PersistentEngine, Query, StreamKey, StreamKind, WorkerGone,
};
use proptest::prelude::*;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

const RANKS: u32 = 16;
const THREADS: u32 = 4;
const EVENTS_PER_RANK: usize = 300;
const BATCH: usize = 64;

fn skey(rank: u32) -> StreamKey {
    StreamKey::new(rank, StreamKind::Sender)
}

/// Deterministic per-stream workload (same shape as `stress.rs`).
fn event_of(rank: u32, step: usize) -> Observation {
    let kind = StreamKind::ALL[step % 3];
    let value = match kind {
        StreamKind::Sender => ((step / 3 + rank as usize) % (2 + rank as usize % 5)) as u64,
        StreamKind::Size => [512u64, 4096, 1 << 20][(step / 3 + rank as usize) % 3],
        StreamKind::Tag => (step / 3 % 2) as u64,
    };
    Observation::new(StreamKey::new(rank, kind), value)
}

/// Every counter of `b` is at least `a`'s (per shard, per field).
fn assert_monotone(a: &EngineMetrics, b: &EngineMetrics) {
    for (i, (x, y)) in a.shards.iter().zip(&b.shards).enumerate() {
        assert!(y.events_ingested >= x.events_ingested, "shard {i} ingested");
        assert!(y.hits >= x.hits, "shard {i} hits");
        assert!(y.misses >= x.misses, "shard {i} misses");
        assert!(y.abstentions >= x.abstentions, "shard {i} abstentions");
        assert!(
            y.queue_high_water >= x.queue_high_water,
            "shard {i} high water"
        );
        assert!(y.send_blocked >= x.send_blocked, "shard {i} blocked");
        assert!(y.shed_events >= x.shed_events, "shard {i} shed");
    }
}

/// Tiny cap + one stalled shard + concurrent writers: `Block` mode must
/// finish without deadlock, keep the lane within its cap, and keep the
/// scored counters exactly equal to a sequential single-shard run.
#[test]
fn slow_shard_with_tiny_cap_blocks_without_deadlock_and_keeps_exact_parity() {
    const CAP: usize = 2;
    let engine = PersistentEngine::new(
        EngineConfig::with_shards(4).with_queue_cap(CAP), // Block is the default policy
    );
    let slow_shard = engine.shard_for(0);
    engine.debug_throttle_worker(slow_shard, Duration::from_millis(1));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let client = engine.client();
                let ranks: Vec<u32> = (0..RANKS).filter(|r| r % THREADS == t).collect();
                let mut batch = Vec::with_capacity(BATCH);
                let mut outcome = ObserveOutcome::default();
                let push = |o: ObserveOutcome, acc: &mut ObserveOutcome| {
                    acc.enqueued += o.enqueued;
                    acc.shed += o.shed;
                };
                for step in 0..EVENTS_PER_RANK {
                    for &r in &ranks {
                        batch.push(event_of(r, step));
                        if batch.len() == BATCH {
                            push(client.observe_batch(&batch), &mut outcome);
                            batch.clear();
                        }
                    }
                }
                push(client.observe_batch(&batch), &mut outcome);
                outcome
            })
        })
        .collect();

    // Sample metrics mid-flight from a separate client: monotone, and
    // the lane can never exceed its cap.
    let sampler = engine.client();
    let mut prev = sampler.metrics();
    for _ in 0..5 {
        let cur = sampler.metrics();
        assert_monotone(&prev, &cur);
        for (i, m) in cur.shards.iter().enumerate() {
            assert!(
                m.queue_high_water <= CAP as u64,
                "shard {i} high water {} exceeds cap {CAP}",
                m.queue_high_water
            );
        }
        prev = cur;
    }

    let total_submitted: u64 = writers
        .into_iter()
        .map(|w| {
            let o = w.join().expect("writer finished (no deadlock)");
            assert_eq!(o.shed, 0, "Block mode never sheds");
            o.enqueued
        })
        .sum();
    assert_eq!(total_submitted, u64::from(RANKS) * EVENTS_PER_RANK as u64);

    engine.debug_throttle_worker(slow_shard, Duration::ZERO);
    let multi = engine.client().metrics_total();
    assert_eq!(multi.events_ingested, total_submitted, "nothing lost");
    assert_eq!(multi.shed_events, 0);
    assert!(
        multi.send_blocked > 0,
        "a 1 ms/command shard behind a cap-{CAP} lane must have blocked writers"
    );
    assert!(multi.queue_high_water >= 1 && multi.queue_high_water <= CAP as u64);

    // Exact scoring parity with a sequential single-shard reference.
    let mut reference = Engine::new(EngineConfig::with_shards(1));
    let mut batch = Vec::with_capacity(BATCH);
    for r in 0..RANKS {
        for step in 0..EVENTS_PER_RANK {
            batch.push(event_of(r, step));
            if batch.len() == BATCH {
                reference.observe_batch(&batch);
                batch.clear();
            }
        }
    }
    reference.observe_batch(&batch);
    let solo = reference.metrics_total();
    assert_eq!(multi.hits, solo.hits, "hit counts must match exactly");
    assert_eq!(multi.misses, solo.misses);
    assert_eq!(multi.abstentions, solo.abstentions);
    assert_eq!(multi.period_churn, solo.period_churn);
    assert_eq!(multi.resident_streams, solo.resident_streams);
}

/// `Shed` mode under sustained overload: every event is accounted for
/// exactly once, per-call outcomes agree with the metrics, and the
/// engine stays serviceable afterwards.
#[test]
fn shed_mode_accounting_is_exact_under_overload() {
    let engine = PersistentEngine::new(
        EngineConfig::with_shards(2)
            .with_queue_cap(1)
            .with_backpressure(BackpressurePolicy::Shed),
    );
    for s in 0..2 {
        engine.debug_throttle_worker(s, Duration::from_millis(5));
    }
    let client = engine.client();
    // Barrier: queries block rather than shed, so once this returns the
    // throttles are active and both lanes are empty — the first leg per
    // shard is then guaranteed to enqueue, everything behind it races a
    // 5 ms/command worker.
    client.metrics_total();
    let mut enqueued = 0u64;
    let mut shed = 0u64;
    const BATCHES: u64 = 30;
    const PER_BATCH: u64 = 20;
    for b in 0..BATCHES {
        let batch: Vec<Observation> = (0..PER_BATCH)
            .map(|i| Observation::new(skey((b + i) as u32 % 8), i % 3))
            .collect();
        let o = client.observe_batch(&batch);
        enqueued += o.enqueued;
        shed += o.shed;
    }
    assert_eq!(enqueued + shed, BATCHES * PER_BATCH, "counted exactly once");
    assert!(
        shed > 0,
        "5 ms/command workers behind cap-1 lanes must shed"
    );
    assert!(enqueued > 0, "some legs land in the gaps");

    for s in 0..2 {
        engine.debug_throttle_worker(s, Duration::ZERO);
    }
    let total = client.metrics_total();
    assert_eq!(total.shed_events, shed, "metric equals summed outcomes");
    assert_eq!(
        total.events_ingested, enqueued,
        "only enqueued events ingest"
    );
    // The engine still serves after shedding: a fresh periodic stream
    // trains and predicts normally once pressure is gone. The metrics
    // barrier after each batch keeps the cap-1 lane drained, so none of
    // the training legs race the worker and shed.
    for _ in 0..20 {
        let o = client.observe_batch(&[
            Observation::new(skey(100), 1),
            Observation::new(skey(100), 2),
        ]);
        assert!(o.complete(), "drained lane must accept the leg");
        client.metrics_total();
    }
    assert_eq!(client.period_of(skey(100)), Some(2));
}

/// A killed shard worker must surface clearly — `WorkerGone` on the
/// submission path, a prompt panic (never a hang) on both query paths:
/// the closed-lane send and the orphaned-reply wait.
#[test]
fn dead_worker_fails_loudly_on_every_path_instead_of_hanging() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // expected panics stay quiet

    // Path 1: lane already closed — submission errors, query panics.
    let engine = PersistentEngine::new(EngineConfig::with_shards(3).with_queue_cap(4));
    let client = engine.client();
    client.observe_batch(&[Observation::new(skey(0), 1)]);
    let dead = engine.shard_for(0);
    engine.debug_kill_worker(dead, true);
    assert_eq!(
        client.try_observe_batch(&[Observation::new(skey(0), 2)]),
        Err(WorkerGone { shard: dead })
    );
    let started = Instant::now();
    let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| client.predict(skey(0), 1)))
        .expect_err("query to a dead shard must panic, not hang");
    let msg = panicked
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("gone"), "unclear dead-worker panic: {msg:?}");
    assert!(started.elapsed() < Duration::from_secs(5), "prompt failure");

    // Path 2: query orphaned mid-flight — the worker dies with the
    // query still queued behind the kill, so the client is waiting on
    // the reply lane and must detect the death, not wait forever.
    let engine2 = PersistentEngine::new(EngineConfig::with_shards(1));
    let client2 = engine2.client();
    client2.observe_batch(&[Observation::new(skey(0), 1)]);
    engine2.debug_throttle_worker(0, Duration::from_millis(100));
    engine2.debug_kill_worker(0, false); // Exit queued; worker still asleep
    let started = Instant::now();
    let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| client2.predict(skey(0), 1)))
        .expect_err("orphaned query must panic, not hang");
    let msg = panicked
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panicked.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("died") || msg.contains("gone"),
        "unclear orphaned-query panic: {msg:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(5), "prompt failure");

    std::panic::set_hook(prev_hook);
}

const P_RANKS: u32 = 6;
const P_HORIZONS: u32 = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: for any shard count, batch split, queue
    /// capacity and TTL setting, `Block`-mode bounded ingestion is
    /// bit-identical to the unbounded persistent engine and to the
    /// scoped sequential reference — mid-sequence and at the end, for
    /// every stream and horizon, including the scored metrics.
    #[test]
    fn bounded_block_ingestion_is_bit_identical_to_unbounded(
        raw_batches in prop::collection::vec((0u32..6, 0u8..3, 0u64..5, 1u8..24), 1..30),
        shards in 1usize..5,
        cap in 1usize..5,
        ttl_sel in 0u64..45,
    ) {
        let ttl = if ttl_sel < 15 { None } else { Some(ttl_sel) };
        let dpd = DpdConfig { window: 48, max_lag: 16, ..DpdConfig::default() };
        let base = EngineConfig {
            shards,
            dpd,
            parallel_threshold: 0,
            ttl,
            ..EngineConfig::default()
        };
        let bounded_eng = PersistentEngine::new(base.clone().with_queue_cap(cap));
        // Stall one shard slightly so small caps genuinely fill and the
        // blocking path runs, not just the try_send fast path.
        bounded_eng.debug_throttle_worker(0, Duration::from_micros(300));
        let bounded = bounded_eng.client();
        let unbounded_eng = PersistentEngine::new(base.clone());
        let unbounded = unbounded_eng.client();
        let mut scoped = Engine::new(base);

        for (r, k, v, len) in raw_batches {
            let batch: Vec<Observation> = (0..u64::from(len))
                .map(|j| {
                    let rank = (r + j as u32) % P_RANKS;
                    let kind = StreamKind::ALL[((u32::from(k) + rank) % 3) as usize];
                    Observation::new(StreamKey::new(rank, kind), (v + j) % 4)
                })
                .collect();
            let outcome = bounded.observe_batch(&batch);
            prop_assert_eq!(outcome.shed, 0, "Block mode must never shed");
            prop_assert_eq!(outcome.enqueued, batch.len() as u64);
            unbounded.observe_batch(&batch);
            scoped.observe_batch(&batch);
            // Mid-sequence spot check on the batch's first stream.
            if let Some(first) = batch.first() {
                for h in 1..=P_HORIZONS {
                    let want = scoped.predict(first.key, h);
                    prop_assert_eq!(bounded.predict(first.key, h), want,
                        "bounded diverged mid-sequence on {:?} +{}", first.key, h);
                    prop_assert_eq!(unbounded.predict(first.key, h), want,
                        "unbounded diverged mid-sequence on {:?} +{}", first.key, h);
                }
            }
        }

        // Final exhaustive comparison over every possible stream.
        let mut queries = Vec::new();
        for rank in 0..P_RANKS {
            for kind in StreamKind::ALL {
                for h in 1..=P_HORIZONS {
                    queries.push(Query::new(StreamKey::new(rank, kind), h));
                }
            }
        }
        let mut want = Vec::new();
        scoped.predict_batch(&queries, &mut want);
        let mut got = Vec::new();
        bounded.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "bounded final state diverged");
        unbounded.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "unbounded final state diverged");

        let (bm, um, sm) = (
            bounded.metrics_total(),
            unbounded.metrics_total(),
            scoped.metrics_total(),
        );
        prop_assert_eq!(bm.events_ingested, sm.events_ingested);
        prop_assert_eq!(bm.hits, sm.hits, "bounded scoring diverged");
        prop_assert_eq!(bm.misses, sm.misses);
        prop_assert_eq!(bm.abstentions, sm.abstentions);
        prop_assert_eq!(um.hits, sm.hits, "unbounded scoring diverged");
        prop_assert_eq!(bm.shed_events, 0);
        prop_assert!(bm.queue_high_water <= cap as u64, "lane exceeded its cap");
    }
}
