//! Persistent-engine stress: 16 shards × 64 ranks × 10k events driven
//! from 8 concurrent client threads, with a metrics monitor sampling
//! mid-flight. Pins the concurrency properties the persistent design
//! must keep:
//!
//! * no deadlock or leaked worker on drop (the test would hang);
//! * metrics are monotone and internally consistent at every sample;
//! * aggregate scoring (hits/misses/abstentions) is **exactly** equal
//!   to a single-shard sequential run — per-stream order is all that
//!   matters, so thread interleaving must not move a single counter.

use mpp_engine::{
    Engine, EngineConfig, EngineMetrics, Observation, PersistentEngine, StreamKey, StreamKind,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 16;
const RANKS: u32 = 64;
const THREADS: u32 = 8;
/// Events per rank. The full 10k ISSUE-scale load runs in release (CI
/// runs the suite in both profiles); debug keeps the same shape at a
/// quarter of the volume so `cargo test` stays snappy.
const EVENTS_PER_RANK: usize = if cfg!(debug_assertions) {
    2_500
} else {
    10_000
};
const BATCH: usize = 4096;

/// Deterministic per-stream workload: each rank rotates over its three
/// attribute streams with rank-dependent periodic values.
fn event_of(rank: u32, step: usize) -> Observation {
    let kind = StreamKind::ALL[step % 3];
    let value = match kind {
        StreamKind::Sender => ((step / 3 + rank as usize) % (2 + rank as usize % 5)) as u64,
        StreamKind::Size => [512u64, 4096, 1 << 20][(step / 3 + rank as usize) % 3],
        StreamKind::Tag => (step / 3 % 2) as u64,
    };
    Observation::new(StreamKey::new(rank, kind), value)
}

/// Every counter of `b` is at least `a`'s (per shard, per field).
fn assert_monotone(a: &EngineMetrics, b: &EngineMetrics) {
    for (i, (x, y)) in a.shards.iter().zip(&b.shards).enumerate() {
        assert!(y.events_ingested >= x.events_ingested, "shard {i} ingested");
        assert!(y.hits >= x.hits, "shard {i} hits");
        assert!(y.misses >= x.misses, "shard {i} misses");
        assert!(y.abstentions >= x.abstentions, "shard {i} abstentions");
        assert!(y.period_churn >= x.period_churn, "shard {i} churn");
        assert!(y.evicted >= x.evicted, "shard {i} evicted");
        assert!(y.max_batch_depth >= x.max_batch_depth, "shard {i} depth");
        assert!(
            y.predictions_served >= x.predictions_served,
            "shard {i} served"
        );
        assert!(
            y.queue_high_water >= x.queue_high_water,
            "shard {i} high water"
        );
        assert!(y.send_blocked >= x.send_blocked, "shard {i} blocked");
        assert!(y.shed_events >= x.shed_events, "shard {i} shed");
    }
}

#[test]
fn concurrent_clients_match_single_shard_run_exactly() {
    let engine = PersistentEngine::new(EngineConfig::with_shards(SHARDS));
    let done = Arc::new(AtomicBool::new(false));

    // Monitor: samples metrics from its own client while ingest runs.
    let monitor = {
        let engine = engine.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let client = engine.client();
            let mut prev = client.metrics();
            let mut samples = 0u32;
            let sample = |prev: &mut mpp_engine::EngineMetrics, samples: &mut u32| {
                let cur = client.metrics();
                assert_monotone(prev, &cur);
                for (i, m) in cur.shards.iter().enumerate() {
                    assert_eq!(
                        m.hits + m.misses + m.abstentions,
                        m.events_ingested,
                        "shard {i}: every observation scores exactly once"
                    );
                }
                *samples += 1;
                *prev = cur;
            };
            // One unconditional sample up front, then sample while the
            // writers run (scheduling-dependent how often), then one
            // final sample after they finish: monotonicity is always
            // checked across at least two snapshots, with no dependence
            // on how the OS schedules this thread.
            sample(&mut prev, &mut samples);
            loop {
                let finished = done.load(Ordering::Relaxed);
                sample(&mut prev, &mut samples);
                if finished {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            (prev, samples)
        })
    };

    // 8 writer threads, each owning 8 ranks end-to-end.
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let client = engine.client();
                let ranks: Vec<u32> = (0..RANKS).filter(|r| r % THREADS == t).collect();
                let mut batch = Vec::with_capacity(BATCH);
                for step in 0..EVENTS_PER_RANK {
                    for &r in &ranks {
                        batch.push(event_of(r, step));
                        if batch.len() == BATCH {
                            client.observe_batch(&batch);
                            batch.clear();
                        }
                    }
                }
                client.observe_batch(&batch);
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }
    done.store(true, Ordering::Relaxed);
    let (_, samples) = monitor.join().expect("monitor thread");
    assert!(samples >= 2, "monitor checked at least two snapshots");

    let total_events = (RANKS as usize * EVENTS_PER_RANK) as u64;
    let inspector = engine.client();
    let multi = inspector.metrics_total();
    assert_eq!(multi.events_ingested, total_events);
    assert_eq!(multi.resident_streams, u64::from(RANKS) * 3);
    assert_eq!(multi.evicted, 0, "no TTL configured");
    assert!(multi.max_batch_depth > 0);

    // Sequential single-shard reference: same per-stream order, so the
    // scored counters must agree to the last event.
    let mut reference = Engine::new(EngineConfig::with_shards(1));
    let mut batch = Vec::with_capacity(BATCH);
    for r in 0..RANKS {
        for step in 0..EVENTS_PER_RANK {
            batch.push(event_of(r, step));
            if batch.len() == BATCH {
                reference.observe_batch(&batch);
                batch.clear();
            }
        }
    }
    reference.observe_batch(&batch);
    let solo = reference.metrics_total();
    assert_eq!(multi.events_ingested, solo.events_ingested);
    assert_eq!(multi.hits, solo.hits, "hit counts must match exactly");
    assert_eq!(multi.misses, solo.misses);
    assert_eq!(multi.abstentions, solo.abstentions);
    assert_eq!(multi.period_churn, solo.period_churn);
    assert_eq!(multi.resident_streams, solo.resident_streams);
    let rate = multi.hit_rate().expect("scored events exist");
    assert!(rate > 0.9, "periodic workload should mostly hit: {rate}");

    // Graceful shutdown: dropping every handle joins 16 workers. A
    // deadlock would hang the test; a slow teardown is also a bug.
    drop(inspector);
    let start = Instant::now();
    drop(engine);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drop took {:?}",
        start.elapsed()
    );
}

#[test]
fn drop_mid_traffic_does_not_deadlock() {
    // Teardown lands on whichever thread drops the last handle: main
    // drops its clone immediately, so the final writer to finish joins
    // all 16 workers from inside its own thread, concurrently with the
    // other writers' clones dying. (A client can never outlive the
    // workers — every client keeps the engine alive by construction —
    // so this pins clean last-drop-from-any-thread shutdown, repeated
    // to give scheduling a chance to vary.)
    for _ in 0..10 {
        let engine = PersistentEngine::new(EngineConfig::with_shards(SHARDS));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let engine = engine.clone();
                std::thread::spawn(move || {
                    let client = engine.client();
                    for step in 0..200 {
                        let obs: Vec<Observation> =
                            (0..32).map(|r| event_of(r * 4 + t, step)).collect();
                        client.observe_batch(&obs);
                    }
                    client.metrics_total().events_ingested
                })
            })
            .collect();
        drop(engine);
        for w in writers {
            let ingested = w.join().expect("writer survived teardown race");
            assert!(ingested > 0);
        }
    }
}
