//! Telemetry integration: snapshot counters cross-check against
//! `ShardMetrics`, shard→engine→federation merges equal single-recorder
//! histograms, the flight recorder attributes evictions / backpressure /
//! worker deaths exactly, and disabled telemetry surfaces as `None`
//! everywhere.

use mpp_core::dpd::DpdConfig;
use mpp_engine::{
    BackpressurePolicy, Engine, EngineConfig, FederatedEngine, FederationConfig, FlightKind,
    Observation, PersistentEngine, Shard, StreamKey, StreamKind, TelemetryConfig,
    TelemetrySnapshot,
};
use std::time::Duration;

fn skey(rank: u32) -> StreamKey {
    StreamKey::new(rank, StreamKind::Sender)
}

fn jkey(job: u32, rank: u32) -> StreamKey {
    StreamKey::for_job(job, rank, StreamKind::Sender)
}

fn telemetry_cfg(shards: usize) -> EngineConfig {
    EngineConfig::with_shards(shards).with_telemetry(TelemetryConfig::enabled())
}

/// A batch cycling `ranks` through per-rank periodic patterns.
fn pattern_batch(ranks: u32, events_per_rank: usize) -> Vec<Observation> {
    let mut batch = Vec::new();
    for i in 0..events_per_rank {
        for r in 0..ranks {
            let period = (r as usize % 3) + 2;
            batch.push(Observation::new(skey(r), (i % period) as u64));
        }
    }
    batch
}

fn assert_quantiles_monotone(snap: &TelemetrySnapshot, name: &str) {
    let h = snap
        .histogram(name)
        .unwrap_or_else(|| panic!("histogram {name} present"));
    assert!(h.count() > 0, "{name} recorded samples");
    let p50 = h.quantile(0.5);
    let p90 = h.quantile(0.9);
    let p99 = h.quantile(0.99);
    assert!(p50 <= p90 && p90 <= p99, "{name}: p50≤p90≤p99");
    assert!(p99 <= h.max().max(1), "{name}: p99 bounded by max bucket");
}

#[test]
fn scoped_snapshot_counters_match_shard_metrics_exactly() {
    let mut eng = Engine::new(telemetry_cfg(3));
    eng.observe_batch(&pattern_batch(8, 40));
    let mut out = Vec::new();
    eng.forecast_messages(0, 4, &mut out);
    let snap = eng.telemetry().expect("telemetry enabled");
    let total = eng.metrics().total();
    assert_eq!(snap.counter("events_ingested"), Some(total.events_ingested));
    assert_eq!(snap.counter("hits"), Some(total.hits));
    assert_eq!(snap.counter("misses"), Some(total.misses));
    assert_eq!(snap.counter("abstentions"), Some(total.abstentions));
    assert_eq!(snap.counter("period_churn"), Some(total.period_churn));
    assert_eq!(snap.counter("evicted"), Some(total.evicted));
    assert_eq!(
        snap.counter("forecasts_served"),
        Some(total.forecasts_served)
    );
    assert_eq!(snap.gauge("resident_streams"), Some(total.resident_streams));
    assert_quantiles_monotone(&snap, "observe_batch_ns");
    assert_quantiles_monotone(&snap, "observe_event_ns");
    assert_quantiles_monotone(&snap, "forecast_ns");
}

#[test]
fn telemetry_disabled_is_none_everywhere_and_costs_no_snapshot() {
    let mut eng = Engine::new(EngineConfig::with_shards(2));
    eng.observe_batch(&pattern_batch(4, 10));
    assert!(eng.telemetry().is_none());
    let peng = PersistentEngine::new(EngineConfig::with_shards(2));
    let client = peng.client();
    client.observe_batch(&pattern_batch(4, 10));
    assert!(client.telemetry().is_none());
    let fed = FederatedEngine::new(FederationConfig::new(2, 1));
    fed.client().observe_batch(&pattern_batch(4, 10));
    assert!(fed.telemetry().is_none());
}

/// Sharding is a throughput device, never a telemetry device: the
/// data-deterministic histogram (`lock_run_events`) recorded across 3
/// shards and merged must be bit-identical to recording the same
/// streams into one shard. Time-based histograms can't be compared
/// across runs, but their merged counts must still sum exactly.
#[test]
fn sharded_merge_equals_single_shard_recording() {
    let cfg = DpdConfig::default();
    let tcfg = TelemetryConfig::enabled();
    let batch = pattern_batch(9, 60);

    // One shard sees everything.
    let mut single = Shard::with_ttl(cfg.clone(), None);
    single.enable_telemetry(&tcfg, 0);
    single.observe_all_at(&batch, 0);

    // Three shards see a rank-partition of the same stream set.
    let mut shards: Vec<Shard> = (0..3)
        .map(|i| {
            let mut s = Shard::with_ttl(cfg.clone(), None);
            s.enable_telemetry(&tcfg, i);
            s
        })
        .collect();
    for obs in &batch {
        let s = (obs.key.rank % 3) as usize;
        shards[s].observe_all_at(std::slice::from_ref(obs), 0);
    }
    let mut merged = TelemetrySnapshot::new();
    for s in &shards {
        merged.merge(&s.telemetry_snapshot().expect("enabled"));
    }
    let single_snap = single.telemetry_snapshot().expect("enabled");

    assert_eq!(
        merged.histogram("lock_run_events"),
        single_snap.histogram("lock_run_events"),
        "data-deterministic histogram is partition-invariant"
    );
    assert_eq!(
        merged.counter("events_ingested"),
        single_snap.counter("events_ingested")
    );
    assert_eq!(
        merged.counter("period_churn"),
        single_snap.counter("period_churn")
    );
    assert_eq!(
        merged.gauge("resident_streams"),
        single_snap.gauge("resident_streams")
    );
    let m = merged.histogram("observe_event_ns").unwrap();
    let s = single_snap.histogram("observe_event_ns").unwrap();
    assert_eq!(m.count(), s.count(), "per-event samples sum across shards");
}

#[test]
fn flight_recorder_attributes_evictions_and_churn() {
    let mut eng = Engine::new(
        EngineConfig::with_shards(1)
            .with_ttl(8)
            .with_telemetry(TelemetryConfig::enabled()),
    );
    // Rank 0 trains, then rank 1's traffic pushes rank 0 past its TTL.
    let warm: Vec<Observation> = (0..6).map(|i| Observation::new(skey(0), i % 2)).collect();
    eng.observe_batch(&warm);
    let filler: Vec<Observation> = (0..20).map(|i| Observation::new(skey(1), i % 2)).collect();
    eng.observe_batch(&filler);
    eng.sweep_expired();
    let snap = eng.telemetry().expect("enabled");
    let evictions: Vec<_> = snap
        .flight()
        .iter()
        .filter(|e| e.kind == FlightKind::Eviction)
        .collect();
    assert!(!evictions.is_empty(), "TTL eviction reaches the flight log");
    assert!(
        evictions.iter().any(|e| e.a == 0),
        "rank 0 is the evicted stream: {evictions:?}"
    );
    assert!(
        snap.flight()
            .iter()
            .any(|e| e.kind == FlightKind::PeriodChurn),
        "period locks churned during warmup"
    );
    // Stamps are engine time: within the submitted range, ascending.
    let stamps: Vec<u64> = snap.flight().iter().map(|e| e.at).collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "sorted by stamp");
    assert!(stamps.iter().all(|&at| at <= 26), "stamps in engine time");
}

#[test]
fn persistent_telemetry_records_queue_wait_and_matches_counters() {
    let eng = PersistentEngine::new(telemetry_cfg(2));
    let client = eng.client();
    for _ in 0..10 {
        client.observe_batch(&pattern_batch(6, 10));
    }
    let total = client.metrics_total();
    let snap = client.telemetry().expect("enabled");
    assert_eq!(snap.counter("events_ingested"), Some(total.events_ingested));
    assert_eq!(snap.gauge("resident_streams"), Some(total.resident_streams));
    assert_quantiles_monotone(&snap, "queue_wait_ns");
    assert_quantiles_monotone(&snap, "observe_batch_ns");
    // Lane counters are client-side injections.
    assert_eq!(snap.counter("send_blocked"), Some(total.send_blocked));
    assert_eq!(snap.counter("shed_events"), Some(total.shed_events));
}

#[test]
fn backpressure_block_and_shed_reach_the_flight_log() {
    // Block: cap-1 lane + throttled worker ⇒ blocked sends recorded.
    let eng = PersistentEngine::new(
        telemetry_cfg(1).with_queue_cap(1), // Block is the default policy
    );
    eng.debug_throttle_worker(0, Duration::from_millis(2));
    let client = eng.client();
    let batch: Vec<Observation> = (0..5).map(|_| Observation::new(skey(0), 1)).collect();
    for _ in 0..8 {
        client.observe_batch(&batch);
    }
    eng.debug_throttle_worker(0, Duration::ZERO);
    let snap = client.telemetry().expect("enabled");
    let blocks: Vec<_> = snap
        .flight()
        .iter()
        .filter(|e| e.kind == FlightKind::BackpressureBlock)
        .collect();
    assert!(!blocks.is_empty(), "stalled cap-1 lane must block");
    assert!(blocks.iter().all(|e| e.shard == 0 && e.a == 5));
    let h = snap.histogram("send_block_ns").expect("block histogram");
    assert_eq!(h.count(), snap.counter("send_blocked").unwrap());

    // Shed: dropped legs leave shed events with exact counts.
    let eng = PersistentEngine::new(
        telemetry_cfg(1)
            .with_queue_cap(1)
            .with_backpressure(BackpressurePolicy::Shed),
    );
    eng.debug_throttle_worker(0, Duration::from_millis(30));
    let client = eng.client();
    let mut shed = 0;
    for _ in 0..6 {
        shed += client.observe_batch(&batch).shed;
    }
    eng.debug_throttle_worker(0, Duration::ZERO);
    assert!(shed > 0, "stalled cap-1 lane must shed");
    let snap = client.telemetry().expect("enabled");
    let shed_logged: u64 = snap
        .flight()
        .iter()
        .filter(|e| e.kind == FlightKind::BackpressureShed)
        .map(|e| e.a)
        .sum();
    assert_eq!(shed_logged, shed, "every shed leg logged with its size");
    assert_eq!(snap.counter("shed_events"), Some(shed));
}

/// Chaos kill: a dead worker must (a) surface a `worker_gone` flight
/// event with exact shard attribution, and (b) still contribute its
/// pre-death counters through the morgue snapshot parked on exit.
#[test]
fn chaos_killed_worker_leaves_flight_event_and_morgue_snapshot() {
    let eng = PersistentEngine::new(telemetry_cfg(2));
    let client = eng.client();
    client.observe_batch(&pattern_batch(8, 20));
    let pre_kill = client.metrics_total().events_ingested;
    let dead = eng.shard_for(0);
    eng.debug_kill_worker(dead, true);
    let err = client
        .try_observe_batch(&[Observation::new(skey(0), 1)])
        .unwrap_err();
    assert_eq!(err.shard, dead);
    let snap = client.telemetry().expect("survives a dead worker");
    let gone: Vec<_> = snap
        .flight()
        .iter()
        .filter(|e| e.kind == FlightKind::WorkerGone)
        .collect();
    assert!(!gone.is_empty(), "the death was sighted");
    assert!(gone.iter().all(|e| e.shard == dead as u32));
    assert_eq!(
        snap.counter("events_ingested"),
        Some(pre_kill),
        "morgue preserves the dead shard's ingest history"
    );
}

#[test]
fn federation_telemetry_merges_members_with_attribution() {
    let fed = FederatedEngine::new(FederationConfig::new(2, 1).member_config(telemetry_cfg(1)));
    let client = fed.client();
    // Find jobs landing on each member.
    let job0 = (0..32).find(|&j| fed.member_of(j) == 0).unwrap();
    let job1 = (0..32).find(|&j| fed.member_of(j) == 1).unwrap();
    for job in [job0, job1] {
        let batch: Vec<Observation> = (0..40)
            .map(|i| Observation::new(jkey(job, 0), i % 2))
            .collect();
        client.observe_batch(&batch);
    }
    let snap = client.telemetry().expect("all members enabled");
    assert_eq!(
        snap.counter("events_ingested"),
        Some(fed.metrics_total().events_ingested)
    );
    assert_quantiles_monotone(&snap, "route_observe_ns");
    let routes = snap.histogram("route_observe_ns").unwrap();
    let r0 = snap.histogram("route_observe_ns_m0").unwrap();
    let r1 = snap.histogram("route_observe_ns_m1").unwrap();
    assert_eq!(routes.count(), r0.count() + r1.count());
    assert_eq!(r0.count(), 1, "one dispatch to member 0");
    assert_eq!(r1.count(), 1, "one dispatch to member 1");
    // Member flight events carry their member index.
    assert!(snap
        .flight()
        .iter()
        .filter(|e| e.kind == FlightKind::PeriodChurn)
        .any(|e| e.member == 0 || e.member == 1));
}

#[test]
fn federation_chaos_kill_attributes_job_and_member() {
    let fed = FederatedEngine::new(FederationConfig::new(2, 1).member_config(telemetry_cfg(1)));
    let client = fed.client();
    let job0 = (0..32).find(|&j| fed.member_of(j) == 0).unwrap();
    client.observe_batch(&[Observation::new(jkey(job0, 0), 1)]);
    fed.member(0).debug_kill_worker(0, true);
    let err = client
        .try_observe_batch(&[Observation::new(jkey(job0, 0), 2)])
        .unwrap_err();
    assert_eq!(err.member, 0);
    assert_eq!(err.job, job0);
    let snap = fed.telemetry().expect("tolerant of a dead member worker");
    let gone: Vec<_> = snap
        .flight()
        .iter()
        .filter(|e| e.kind == FlightKind::WorkerGone && e.member == 0)
        .collect();
    assert!(
        gone.iter().any(|e| e.job == job0 && e.shard == 0),
        "federation ring pins the death to (job, member, shard): {gone:?}"
    );
}

#[test]
fn epoch_rebound_reaches_the_federation_flight_log() {
    let fed = FederatedEngine::new(
        FederationConfig::new(2, 1)
            .member_config(telemetry_cfg(1).with_queue_cap(8))
            .adaptive(Default::default()),
    );
    let client = fed.client();
    client.observe_batch(&pattern_batch(4, 10));
    let report = fed.end_epoch();
    let snap = fed.telemetry().expect("enabled");
    let rebounds: Vec<_> = snap
        .flight()
        .iter()
        .filter(|e| e.kind == FlightKind::EpochRebound)
        .collect();
    assert_eq!(rebounds.len(), 2, "one rebound event per member");
    for r in &report {
        assert!(
            rebounds.iter().any(|e| e.member == r.member as u32
                && e.a == r.queue_high_water
                && Some(e.b as usize) == r.observe_queue_cap),
            "rebound event mirrors the epoch report for member {}",
            r.member
        );
    }
}

/// Satellite regression for the sum-of-gauges contract: after TTL and
/// forced evictions, the summed `resident_streams` gauge must agree
/// exactly between scoped and persistent execution of one workload,
/// and with the telemetry gauge.
#[test]
fn resident_streams_gauge_sums_exactly_after_eviction() {
    let cfg = telemetry_cfg(3).with_ttl(64);
    let batch = pattern_batch(12, 30);

    let mut scoped = Engine::new(cfg.clone());
    scoped.observe_batch(&batch);
    scoped.evict_stream(skey(3));
    scoped.evict_stream(skey(7));
    scoped.sweep_expired();

    let peng = PersistentEngine::new(cfg);
    let client = peng.client();
    client.observe_batch(&batch);
    client.evict_stream(skey(3));
    client.evict_stream(skey(7));
    client.sweep_expired();

    let s_total = scoped.metrics().total();
    let p_total = client.metrics_total();
    assert_eq!(s_total.resident_streams, p_total.resident_streams);
    assert_eq!(s_total.evicted, p_total.evicted);
    assert_eq!(
        scoped.telemetry().unwrap().gauge("resident_streams"),
        Some(s_total.resident_streams)
    );
    assert_eq!(
        client.telemetry().unwrap().gauge("resident_streams"),
        Some(p_total.resident_streams)
    );
}

#[test]
fn snapshot_exports_are_well_formed() {
    let mut eng = Engine::new(telemetry_cfg(2));
    eng.observe_batch(&pattern_batch(5, 30));
    let snap = eng.telemetry().unwrap();
    let json = snap.to_json();
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"flight\"",
        "\"events_ingested\"",
        "\"observe_batch_ns\"",
        "\"p99\"",
    ] {
        assert!(json.contains(key), "JSON export misses {key}: {json}");
    }
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE mpp_events_ingested counter"));
    assert!(prom.contains("# TYPE mpp_resident_streams gauge"));
    assert!(prom.contains("mpp_observe_batch_ns{quantile=\"0.99\"}"));
}
