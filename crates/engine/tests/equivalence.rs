//! The engine's load-bearing property: for ANY interleaved event
//! sequence, ANY shard count, and ANY batch split, batched sharded
//! serving is bit-identical to sequentially driving one `DpdPredictor`
//! per stream on the raw symbols. Sharding and interning are throughput
//! devices, never semantics devices.

use mpp_core::dpd::{DpdConfig, DpdPredictor};
use mpp_core::predictors::Predictor;
use mpp_engine::{Engine, EngineConfig, Observation, Query, StreamKey, StreamKind};
use proptest::prelude::*;
use std::collections::HashMap;

/// Decodes a generated `(rank, kind, value)` triple into an observation.
fn decode(rank: u32, kind: u8, value: u64) -> Observation {
    let kind = StreamKind::ALL[kind as usize % 3];
    Observation::new(StreamKey::new(rank, kind), value)
}

/// Sequential per-stream reference: one raw-symbol predictor per key.
fn reference_bank(events: &[Observation], cfg: &DpdConfig) -> HashMap<StreamKey, DpdPredictor> {
    let mut bank: HashMap<StreamKey, DpdPredictor> = HashMap::new();
    for obs in events {
        bank.entry(obs.key)
            .or_insert_with(|| DpdPredictor::new(cfg.clone()))
            .observe(obs.value);
    }
    bank
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predictions and detected periods agree with the sequential
    /// reference for every stream and horizon, regardless of shard
    /// count and batch split.
    #[test]
    fn sharded_batched_equals_sequential(
        raw in prop::collection::vec((0u32..16, 0u8..3, 0u64..8), 0..400),
        shards in 1usize..6,
        batch_size in 1usize..64,
    ) {
        let cfg = DpdConfig { window: 64, max_lag: 32, ..DpdConfig::default() };
        let events: Vec<Observation> =
            raw.iter().map(|&(r, k, v)| decode(r, k, v)).collect();

        let mut engine = Engine::new(EngineConfig {
            shards,
            dpd: cfg.clone(),
            // Exercise the threaded path even on small batches.
            parallel_threshold: 0,
            ttl: None,
            ..EngineConfig::default()
        });
        for chunk in events.chunks(batch_size.max(1)) {
            engine.observe_batch(chunk);
        }

        let bank = reference_bank(&events, &cfg);
        prop_assert_eq!(engine.stream_count(), bank.len());
        prop_assert_eq!(engine.metrics_total().events_ingested, events.len() as u64);

        let mut queries = Vec::new();
        let mut expected = Vec::new();
        for (key, predictor) in &bank {
            prop_assert_eq!(
                engine.period_of(*key),
                predictor.period(),
                "period diverged on {:?}", key
            );
            for h in 1..=5u32 {
                queries.push(Query::new(*key, h));
                expected.push(predictor.predict(h as usize));
            }
        }
        let mut got = Vec::new();
        engine.predict_batch(&queries, &mut got);
        prop_assert_eq!(got, expected);
    }

    /// Shard count never changes results: engines with different shard
    /// counts agree with each other on everything.
    #[test]
    fn shard_count_is_invisible(
        raw in prop::collection::vec((0u32..32, 0u8..3, 0u64..5), 0..300),
        shards_a in 1usize..8,
        shards_b in 1usize..8,
    ) {
        let events: Vec<Observation> =
            raw.iter().map(|&(r, k, v)| decode(r, k, v)).collect();
        let build = |shards: usize| {
            let mut e = Engine::new(EngineConfig {
                shards,
                dpd: DpdConfig { window: 64, max_lag: 16, ..DpdConfig::default() },
                parallel_threshold: 0,
                ttl: None,
                ..EngineConfig::default()
            });
            e.observe_batch(&events);
            e
        };
        let mut a = build(shards_a);
        let mut b = build(shards_b);
        let queries: Vec<Query> = events
            .iter()
            .flat_map(|o| (1..=3u32).map(move |h| Query::new(o.key, h)))
            .collect();
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        a.predict_batch(&queries, &mut ra);
        b.predict_batch(&queries, &mut rb);
        prop_assert_eq!(ra, rb);
        // Aggregate scoring metrics are shard-layout independent too.
        let (ta, tb) = (a.metrics_total(), b.metrics_total());
        prop_assert_eq!(ta.events_ingested, tb.events_ingested);
        prop_assert_eq!(ta.hits, tb.hits);
        prop_assert_eq!(ta.misses, tb.misses);
        prop_assert_eq!(ta.period_churn, tb.period_churn);
        prop_assert_eq!(ta.resident_streams, tb.resident_streams);
    }

    /// Batch boundaries are invisible: one big batch equals
    /// event-at-a-time ingestion.
    #[test]
    fn batch_split_is_invisible(
        raw in prop::collection::vec((0u32..8, 0u8..3, 0u64..6), 0..250),
        shards in 1usize..5,
    ) {
        let events: Vec<Observation> =
            raw.iter().map(|&(r, k, v)| decode(r, k, v)).collect();
        let cfg = EngineConfig {
            shards,
            dpd: DpdConfig { window: 32, max_lag: 8, ..DpdConfig::default() },
            parallel_threshold: 0,
            ttl: None,
            ..EngineConfig::default()
        };
        let mut whole = Engine::new(cfg.clone());
        whole.observe_batch(&events);
        let mut single = Engine::new(cfg);
        for obs in &events {
            single.observe(obs.key, obs.value);
        }
        for obs in &events {
            for h in 1..=4u32 {
                prop_assert_eq!(
                    whole.predict(obs.key, h),
                    single.predict(obs.key, h)
                );
            }
        }
    }
}
