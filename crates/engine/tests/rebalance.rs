//! Property pins for the load-aware placement plan.
//!
//! The rebalancer's safety story has two halves: migration is
//! bit-identical across the cut (`tests/federation.rs`), and the plan
//! itself is a **pure function** of the metrics snapshot — no clocks,
//! no randomness, no ambient state — so placement decisions replay
//! exactly and can be audited from a recorded snapshot. These
//! properties pin the second half, plus the structural invariants
//! every plan must satisfy.

use mpp_engine::rebalance::{plan, JobLoad, MemberLoad, RebalanceConfig, RebalanceSnapshot};
use proptest::prelude::*;

/// Largest member count the raw draws are folded into.
const MAX_MEMBERS: usize = 5;

/// Builds a snapshot from raw proptest draws: `qhw` supplies one
/// high-water mark per member (extra draws ignored) and each raw job
/// tuple is `(member_pick, events, mix_churn, dwell_epochs)` with the
/// member pick folded into range.
fn build_snapshot(
    members: usize,
    epoch: u64,
    qhw: &[u64],
    raw_jobs: &[(usize, u64, u64, u64)],
) -> RebalanceSnapshot {
    RebalanceSnapshot {
        epoch,
        members: (0..members)
            .map(|m| MemberLoad {
                member: m,
                queue_high_water: qhw[m],
            })
            .collect(),
        jobs: raw_jobs
            .iter()
            .enumerate()
            .map(|(j, &(pick, events, mix_churn, dwell_epochs))| JobLoad {
                job: j as u32,
                member: pick % members,
                events,
                mix_churn,
                dwell_epochs,
            })
            .collect(),
    }
}

fn build_config(headroom: u32, max_moves: usize, dwell: u64) -> RebalanceConfig {
    RebalanceConfig {
        headroom,
        max_moves_per_epoch: max_moves,
        min_dwell_epochs: dwell,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Purity: the same (config, snapshot) pair always yields the same
    /// plan — byte for byte, across calls and across clones.
    #[test]
    fn plan_is_a_pure_function_of_the_snapshot(
        members in 2usize..(MAX_MEMBERS + 1),
        epoch in 0u64..50,
        qhw in prop::collection::vec(0u64..64, MAX_MEMBERS),
        raw_jobs in prop::collection::vec(
            (0usize..MAX_MEMBERS, 0u64..10_000, 0u64..4_000, 0u64..8),
            0..24,
        ),
        headroom in 0u32..200,
        max_moves in 1usize..6,
        dwell in 0u64..5,
    ) {
        let cfg = build_config(headroom, max_moves, dwell);
        let snap = build_snapshot(members, epoch, &qhw, &raw_jobs);
        let a = plan(&cfg, &snap);
        let b = plan(&cfg, &snap.clone());
        let c = plan(&cfg.clone(), &snap);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// Structural invariants every plan must satisfy: the move budget,
    /// dwell eligibility, route consistency (each move starts where
    /// the job actually is, earlier moves applied), no job moved
    /// twice, and strict monotone descent of the donor's load (so the
    /// plan can never oscillate or make the imbalance worse).
    #[test]
    fn every_plan_respects_budget_dwell_routes_and_descends(
        members in 2usize..(MAX_MEMBERS + 1),
        epoch in 0u64..50,
        qhw in prop::collection::vec(0u64..64, MAX_MEMBERS),
        raw_jobs in prop::collection::vec(
            (0usize..MAX_MEMBERS, 0u64..10_000, 0u64..4_000, 0u64..8),
            0..24,
        ),
        headroom in 0u32..200,
        max_moves in 1usize..6,
        dwell in 0u64..5,
    ) {
        let cfg = build_config(headroom, max_moves, dwell);
        let snap = build_snapshot(members, epoch, &qhw, &raw_jobs);
        let p = plan(&cfg, &snap);
        prop_assert!(p.moves.len() <= cfg.max_moves_per_epoch, "move budget");

        let n = snap.members.len();
        let mut member_of: std::collections::HashMap<u32, usize> = snap
            .jobs
            .iter()
            .map(|j| (j.job, j.member))
            .collect();
        let mut load = vec![0u64; n];
        for j in &snap.jobs {
            load[j.member] += j.weight();
        }
        let mut seen = std::collections::HashSet::new();
        for mv in &p.moves {
            prop_assert!(mv.from < n && mv.to < n, "members in range");
            prop_assert_ne!(mv.from, mv.to, "a move actually moves");
            prop_assert!(seen.insert(mv.job), "no job moves twice per plan");
            prop_assert_eq!(
                member_of.get(&mv.job).copied(),
                Some(mv.from),
                "move starts where the job is (earlier moves applied)"
            );
            let j = snap.jobs.iter().find(|j| j.job == mv.job).unwrap();
            prop_assert!(
                j.dwell_epochs >= cfg.min_dwell_epochs,
                "dwell eligibility"
            );
            prop_assert_eq!(mv.weight, j.weight(), "recorded weight is the job's");
            prop_assert!(mv.weight > 0, "zero-weight jobs never move");
            // Strict improvement: the receiver never overtakes the
            // donor's pre-move load.
            prop_assert!(
                load[mv.to] + mv.weight < load[mv.from],
                "each move strictly reduces the pairwise imbalance"
            );
            load[mv.from] -= mv.weight;
            load[mv.to] += mv.weight;
            member_of.insert(mv.job, mv.to);
        }
    }

    /// A balanced federation (all member loads within headroom of the
    /// mean) plans nothing — the rebalancer is quiescent at the fixed
    /// point, so it can never thrash a balanced cluster.
    #[test]
    fn balanced_snapshots_plan_nothing(
        members in 2usize..(MAX_MEMBERS + 1),
        per_member in 1u64..1000,
        dwell in 0u64..10,
    ) {
        let cfg = RebalanceConfig::default();
        let snap = RebalanceSnapshot {
            epoch: 1,
            members: (0..members)
                .map(|m| MemberLoad { member: m, queue_high_water: 0 })
                .collect(),
            jobs: (0..members)
                .map(|m| JobLoad {
                    job: m as u32,
                    member: m,
                    events: per_member,
                    mix_churn: 0,
                    dwell_epochs: dwell,
                })
                .collect(),
        };
        prop_assert!(plan(&cfg, &snap).moves.is_empty());
    }
}
