//! The persistent engine's load-bearing property: for ANY interleaving
//! of observe/predict batches, forced evictions, TTL expiries and
//! memory-reclamation sweeps, the persistent-worker engine is
//! bit-identical to (a) the scoped engine fed the same operations and
//! (b) the sequential reference of one raw-symbol `DpdPredictor` per
//! stream with the same eviction rule applied by hand — including
//! across eviction-and-reload of a stream, which must restart cold.

use mpp_core::dpd::{DpdConfig, DpdPredictor};
use mpp_core::predictors::Predictor;
use mpp_engine::{
    Engine, EngineConfig, Observation, PersistentEngine, Query, StreamKey, StreamKind,
};
use proptest::prelude::*;
use std::collections::HashMap;

const RANKS: u32 = 6;
const HORIZONS: u32 = 4;

/// Sequential per-stream reference with the engine's eviction rule:
/// raw symbols, one predictor per stream, reset on forced eviction or
/// when the engine-time gap exceeds the TTL.
struct RefBank {
    cfg: DpdConfig,
    ttl: Option<u64>,
    clock: u64,
    slots: HashMap<StreamKey, (DpdPredictor, u64)>,
}

impl RefBank {
    fn new(cfg: DpdConfig, ttl: Option<u64>) -> Self {
        RefBank {
            cfg,
            ttl,
            clock: 0,
            slots: HashMap::new(),
        }
    }

    fn expired(&self, last_seen: u64, now: u64) -> bool {
        matches!(self.ttl, Some(t) if now.saturating_sub(last_seen) > t)
    }

    fn observe_batch(&mut self, batch: &[Observation]) {
        for obs in batch {
            self.clock += 1;
            let at = self.clock;
            let cfg = &self.cfg;
            let ttl = self.ttl;
            let (predictor, last_seen) = self
                .slots
                .entry(obs.key)
                .or_insert_with(|| (DpdPredictor::new(cfg.clone()), 0));
            let gap_expired = matches!(ttl, Some(t) if at.saturating_sub(*last_seen) > t);
            if *last_seen > 0 && gap_expired {
                *predictor = DpdPredictor::new(cfg.clone());
            }
            predictor.observe(obs.value);
            *last_seen = at;
        }
    }

    fn predict(&self, key: StreamKey, horizon: u32) -> Option<u64> {
        let (predictor, last_seen) = self.slots.get(&key)?;
        if self.expired(*last_seen, self.clock) {
            return None;
        }
        predictor.predict(horizon as usize)
    }

    fn evict(&mut self, key: StreamKey) {
        self.slots.remove(&key);
    }

    /// Whether `key` holds a live (non-expired) stream.
    fn live_contains(&self, key: StreamKey) -> bool {
        self.slots
            .get(&key)
            .is_some_and(|(_, seen)| !self.expired(*seen, self.clock))
    }

    /// Streams still live (not expired) — what the engine must have
    /// resident after a full sweep.
    fn live_count(&self) -> usize {
        self.slots
            .values()
            .filter(|(_, seen)| !self.expired(*seen, self.clock))
            .count()
    }
}

/// One generated operation, decoded from a flat integer tuple so the
/// vendored proptest's strategies (ranges + tuples + vec) suffice.
#[derive(Debug, Clone)]
enum Op {
    /// Ingest a small deterministic batch derived from the seeds.
    ObserveBatch(Vec<Observation>),
    /// Compare predictions for one key at all horizons.
    Predict(StreamKey),
    /// Forcibly evict one stream everywhere (engine + reference).
    Evict(StreamKey),
    /// Memory-reclamation sweep on the engines only: must be invisible.
    Sweep,
}

fn decode_key(rank: u32, kind: u8) -> StreamKey {
    StreamKey::new(rank % RANKS, StreamKind::ALL[kind as usize % 3])
}

fn decode_op((sel, rank, kind, value, len): (u8, u32, u8, u64, u8)) -> Op {
    match sel % 8 {
        // Half the weight on ingest so streams actually train.
        0..=3 => {
            let events = (0..u64::from(len) + 1)
                .map(|j| {
                    let r = (rank + j as u32) % RANKS;
                    let k = StreamKind::ALL[((u32::from(kind) + r) % 3) as usize];
                    // Per-stream periodic-ish values with occasional breaks.
                    Observation::new(StreamKey::new(r, k), (value + j) % 5)
                })
                .collect();
            Op::ObserveBatch(events)
        }
        4 | 5 => Op::Predict(decode_key(rank, kind)),
        6 => Op::Evict(decode_key(rank, kind)),
        _ => Op::Sweep,
    }
}

/// Regression for the cross-tenant TTL bug: engine time used to be a
/// single member-wide event clock, so a chatty co-resident job's
/// traffic advanced the clock that expired a quiet job's idle
/// streams. Time is per-job now — only a job's own events age its
/// streams — so a tenant flood can never expire another tenant's
/// state. (This test fails on the old shared-clock semantics: the
/// flood pushes the global clock far past the quiet job's TTL.)
#[test]
fn ttl_is_isolated_per_job_on_one_member() {
    const TTL: u64 = 50;
    const QUIET: u32 = 1;
    const CHATTY: u32 = 2;
    let ecfg = EngineConfig {
        shards: 4,
        ttl: Some(TTL),
        parallel_threshold: 0,
        ..EngineConfig::default()
    };
    let persistent = PersistentEngine::new(ecfg.clone());
    let client = persistent.client();
    let mut scoped = Engine::new(ecfg);

    // Train the quiet tenant, then leave it idle.
    let quiet_key = StreamKey::for_job(QUIET, 0, StreamKind::Sender);
    let train: Vec<Observation> = (0..20)
        .map(|i| Observation::new(quiet_key, i % 2))
        .collect();
    client.observe_batch(&train);
    scoped.observe_batch(&train);
    let before = client.predict(quiet_key, 1);
    assert!(before.is_some(), "quiet stream trained to a lock");
    assert_eq!(scoped.predict(quiet_key, 1), before);

    // Flood the chatty tenant far past the quiet tenant's TTL.
    let flood: Vec<Observation> = (0..TTL * 40)
        .map(|i| {
            Observation::new(
                StreamKey::for_job(CHATTY, (i % 4) as u32, StreamKind::ALL[(i % 3) as usize]),
                i % 7,
            )
        })
        .collect();
    client.observe_batch(&flood);
    scoped.observe_batch(&flood);

    // The quiet tenant aged 0 events on its own clock: still live,
    // still predicting the same value, and a sweep reclaims nothing
    // of it.
    client.sweep_expired();
    scoped.sweep_expired();
    assert_eq!(
        client.predict(quiet_key, 1),
        before,
        "flood expired a co-tenant"
    );
    assert_eq!(
        scoped.predict(quiet_key, 1),
        before,
        "flood expired a co-tenant (scoped)"
    );
    assert!(client.resident_jobs().contains(&QUIET));
    assert!(scoped.resident_jobs().contains(&QUIET));

    // Per-job time still expires: the quiet tenant's own next event
    // arrives after a gap beyond its TTL on its own clock — the
    // stream restarts cold (lazy reset), proving expiry works without
    // the shared clock.
    let idle: Vec<Observation> = (0..TTL + 1)
        .map(|i| Observation::new(StreamKey::for_job(QUIET, 9, StreamKind::Tag), i % 3))
        .collect();
    client.observe_batch(&idle);
    scoped.observe_batch(&idle);
    let cold = client.predict(quiet_key, 1);
    assert_eq!(cold, None, "a job's own gap past TTL must still expire it");
    assert_eq!(scoped.predict(quiet_key, 1), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Any interleaving of observe/predict batches, forced evictions
    /// and sweeps: persistent == scoped == sequential reference,
    /// bit-for-bit, for every stream and horizon — under TTL expiry
    /// and across eviction-and-reload.
    #[test]
    fn persistent_matches_scoped_and_sequential_reference(
        raw_ops in prop::collection::vec(
            (0u8..8, 0u32..6, 0u8..3, 0u64..5, 0u8..20), 1..50),
        shards in 1usize..6,
        ttl_sel in 0u64..60,
    ) {
        // A third of the cases run without TTL; the rest with a small
        // TTL so expiry genuinely fires mid-sequence.
        let ttl = if ttl_sel < 20 { None } else { Some(ttl_sel) };
        let cfg = DpdConfig { window: 48, max_lag: 16, ..DpdConfig::default() };
        let ecfg = EngineConfig {
            shards,
            dpd: cfg.clone(),
            parallel_threshold: 0,
            ttl,
            ..EngineConfig::default()
        };
        let persistent = PersistentEngine::new(ecfg.clone());
        let client = persistent.client();
        let mut scoped = Engine::new(ecfg);
        let mut reference = RefBank::new(cfg, ttl);
        let mut total_events = 0u64;

        let ops: Vec<Op> = raw_ops.into_iter().map(decode_op).collect();
        for op in &ops {
            match op {
                Op::ObserveBatch(events) => {
                    client.observe_batch(events);
                    scoped.observe_batch(events);
                    reference.observe_batch(events);
                    total_events += events.len() as u64;
                }
                Op::Predict(key) => {
                    for h in 1..=HORIZONS {
                        let want = reference.predict(*key, h);
                        prop_assert_eq!(
                            client.predict(*key, h), want,
                            "persistent diverged mid-sequence on {:?} +{}", key, h
                        );
                        prop_assert_eq!(
                            scoped.predict(*key, h), want,
                            "scoped diverged mid-sequence on {:?} +{}", key, h
                        );
                    }
                }
                Op::Evict(key) => {
                    // Evicted-and-reloaded streams must restart cold.
                    // A *live* stream is resident in every mode, so both
                    // engines must report it evicted; for expired streams
                    // the return value depends on the sweep schedule
                    // (scoped sweeps every shard per batch, persistent
                    // only busy shards), which is legitimately
                    // mode-dependent and not asserted.
                    let live = reference.live_contains(*key);
                    let a = client.evict_stream(*key);
                    let b = scoped.evict_stream(*key);
                    if live {
                        prop_assert!(a && b, "live stream must be resident in both modes");
                    }
                    reference.evict(*key);
                }
                Op::Sweep => {
                    // Reclamation must never change anything observable.
                    client.sweep_expired();
                    scoped.sweep_expired();
                }
            }
        }

        // Final exhaustive comparison over every possible stream.
        let mut queries = Vec::new();
        let mut expected = Vec::new();
        for rank in 0..RANKS {
            for kind in StreamKind::ALL {
                let key = StreamKey::new(rank, kind);
                for h in 1..=HORIZONS {
                    queries.push(Query::new(key, h));
                    expected.push(reference.predict(key, h));
                }
            }
        }
        let mut got = Vec::new();
        client.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &expected, "persistent final state diverged");
        scoped.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &expected, "scoped final state diverged");

        // Metrics: both modes saw every event, and after a full sweep
        // both hold exactly the reference's live streams.
        let (pm, sm) = (client.metrics_total(), scoped.metrics_total());
        prop_assert_eq!(pm.events_ingested, total_events);
        prop_assert_eq!(sm.events_ingested, total_events);
        prop_assert_eq!(pm.hits, sm.hits, "scoring diverged between modes");
        prop_assert_eq!(pm.misses, sm.misses);
        prop_assert_eq!(pm.abstentions, sm.abstentions);
        client.sweep_expired();
        scoped.sweep_expired();
        prop_assert_eq!(client.stream_count(), reference.live_count());
        prop_assert_eq!(scoped.stream_count(), reference.live_count());
    }
}
