//! The federation's load-bearing properties.
//!
//! * **Cross-engine equivalence.** A K-job interleaved workload served
//!   through a [`FederatedEngine`] is bit-identical to K *independent*
//!   sequential references (one raw-symbol `DpdPredictor` per stream,
//!   one bank per job) — for any member count, shard count, batch
//!   split, queue capacity and pinning. Federation, like sharding, is
//!   a throughput device, never a semantics device. The per-job metric
//!   rollups equal a single scoped engine fed the same sequence.
//! * **Job isolation.** Flooding and then evicting job A changes
//!   *nothing* observable about job B: predictions, periods,
//!   confidence and B's `JobMetrics` rollup are all unchanged. Time
//!   is per-job too — a co-tenant's traffic never advances the clock
//!   that expires another job's idle streams (see
//!   `ttl_is_isolated_per_job_on_one_member` in
//!   `tests/persistence.rs` and the `federation` module docs).
//! * **Live migration is invisible.** Migrating a job between members
//!   mid-workload — snapshot, restore, extract, repin — leaves its
//!   predictions and scoring rollup bit-identical to a run that never
//!   migrated, moves its residency wholesale, and leaves every other
//!   job untouched.
//! * **Chaos: dead member workers fail loudly with attribution.** A
//!   killed shard worker inside one member surfaces
//!   [`FederationWorkerGone`] naming the job, member and shard, while
//!   jobs on other members — and legs dispatched to healthy members in
//!   the same batch — keep serving.

use mpp_core::dpd::{DpdConfig, DpdPredictor};
use mpp_core::predictors::Predictor;
use mpp_engine::{
    Engine, EngineConfig, FederatedEngine, FederationConfig, FederationWorkerGone, JobId,
    Observation, ObserveOutcome, Query, StreamKey, StreamKind, WorkerGone,
};
use proptest::prelude::*;
use std::collections::HashMap;

const RANKS: u32 = 6;
const HORIZONS: u32 = 4;

fn jkey(job: u32, rank: u32, kind: StreamKind) -> StreamKey {
    StreamKey::for_job(job, rank, kind)
}

/// Per-job variation of a base event so the K references genuinely
/// differ: each job sees its own rank/value transformation of the
/// generated sequence.
fn job_variant(job: u32, rank: u32, kind: u8, value: u64) -> Observation {
    let kind = StreamKind::ALL[((u32::from(kind) + job) % 3) as usize];
    let rank = (rank + job) % RANKS;
    Observation::new(jkey(job, rank, kind), (value + u64::from(job)) % 6)
}

/// One raw-symbol predictor per stream, fed sequentially — the
/// independent reference for one job's namespace.
fn reference_bank(events: &[Observation], cfg: &DpdConfig) -> HashMap<StreamKey, DpdPredictor> {
    let mut bank: HashMap<StreamKey, DpdPredictor> = HashMap::new();
    for obs in events {
        bank.entry(obs.key)
            .or_insert_with(|| DpdPredictor::new(cfg.clone()))
            .observe(obs.value);
    }
    bank
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: for any member count, shard count,
    /// batch split, queue capacity and pin, a K-job interleaved
    /// workload through the federation is bit-identical to K
    /// independent sequential references, and the per-job rollups
    /// equal a single scoped engine fed the same interleaved sequence.
    #[test]
    fn k_job_federated_replay_is_bit_identical_to_k_references(
        raw in prop::collection::vec((0u32..RANKS, 0u8..3, 0u64..6), 0..240),
        jobs in 1u32..4,
        members in 1usize..4,
        shards in 1usize..4,
        batch_size in 1usize..48,
        cap_sel in 0usize..4,
        pin_sel in 0u32..8,
    ) {
        let dpd = DpdConfig { window: 48, max_lag: 16, ..DpdConfig::default() };
        let member_cfg = EngineConfig {
            shards,
            dpd: dpd.clone(),
            parallel_threshold: 0,
            ttl: None,
            ..EngineConfig::default()
        };
        // cap_sel 0 = unbounded lanes; otherwise a tiny Block-mode cap.
        let member_cfg = match cap_sel {
            0 => member_cfg,
            c => member_cfg.with_queue_cap(c),
        };
        let fed = FederatedEngine::new(FederationConfig {
            members,
            member: member_cfg.clone(),
            adaptive: None,
            rebalance: None,
        });
        // Exercise the explicit pinning API: one job is pinned to an
        // arbitrary member before any traffic flows.
        fed.pin_job(pin_sel % jobs, (pin_sel as usize) % members);
        let client = fed.client();

        // K interleaved job variants of the generated sequence.
        let events: Vec<Observation> = raw
            .iter()
            .flat_map(|&(r, k, v)| (0..jobs).map(move |j| job_variant(j, r, k, v)))
            .collect();
        for chunk in events.chunks(batch_size) {
            let outcome = client.observe_batch(chunk);
            prop_assert_eq!(outcome.shed, 0, "Block lanes never shed");
            prop_assert_eq!(outcome.enqueued, chunk.len() as u64);
        }

        // One independent reference bank per job, fed only its events.
        let mut scoped = Engine::new(EngineConfig { shards: 1, ..member_cfg });
        scoped.observe_batch(&events);
        for job in 0..jobs {
            let own: Vec<Observation> =
                events.iter().copied().filter(|o| o.key.job == job).collect();
            let bank = reference_bank(&own, &dpd);
            let mut queries = Vec::new();
            let mut expected = Vec::new();
            for rank in 0..RANKS {
                for kind in StreamKind::ALL {
                    let key = jkey(job, rank, kind);
                    let reference = bank.get(&key);
                    prop_assert_eq!(
                        client.period_of(key),
                        reference.and_then(|p| p.period()),
                        "period diverged on {:?}", key
                    );
                    for h in 1..=HORIZONS {
                        queries.push(Query::new(key, h));
                        expected.push(reference.and_then(|p| p.predict(h as usize)));
                    }
                }
            }
            let mut got = Vec::new();
            client.predict_batch(&queries, &mut got);
            prop_assert_eq!(&got, &expected, "job {} diverged from its reference", job);
            // Scoring rollups: federated == single scoped engine.
            let fed_roll = client
                .job_metrics()
                .into_iter()
                .find(|&(j, _)| j == job)
                .map(|(_, m)| m);
            let scoped_roll = scoped
                .job_metrics()
                .into_iter()
                .find(|&(j, _)| j == job)
                .map(|(_, m)| m);
            prop_assert_eq!(
                fed_roll.map(|m| (m.events_ingested, m.hits, m.misses, m.abstentions,
                                  m.period_churn, m.resident_streams)),
                scoped_roll.map(|m| (m.events_ingested, m.hits, m.misses, m.abstentions,
                                     m.period_churn, m.resident_streams)),
                "job {} rollup diverged from the scoped reference", job
            );
            prop_assert_eq!(
                fed_roll.map_or(0, |m| m.resident_streams) as usize,
                bank.len(),
                "job {} resident streams", job
            );
        }
        // Nothing was lost or double-counted across members.
        prop_assert_eq!(
            fed.metrics_total().events_ingested,
            events.len() as u64
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Live migration is invisible: for any workload, cut point,
    /// member/shard count, TTL and target member, a federation that
    /// migrates one job mid-workload serves predictions and per-job
    /// rollups bit-identical to one that never migrates — and the
    /// migrated job's residency moves wholesale.
    #[test]
    fn live_migration_is_bit_identical_to_never_migrating(
        raw in prop::collection::vec((0u32..RANKS, 0u8..3, 0u64..6), 1..160),
        jobs in 1u32..4,
        members in 2usize..4,
        shards in 1usize..3,
        cut_sel in 0usize..480,
        mig_sel in 0u32..8,
        target_sel in 0usize..4,
        ttl_sel in 0u64..40,
    ) {
        let ttl = if ttl_sel < 15 { None } else { Some(ttl_sel) };
        let dpd = DpdConfig { window: 48, max_lag: 16, ..DpdConfig::default() };
        let member_cfg = EngineConfig {
            shards,
            dpd,
            parallel_threshold: 0,
            ttl,
            ..EngineConfig::default()
        };
        let fed_of = || FederatedEngine::new(FederationConfig {
            members,
            member: member_cfg.clone(),
            adaptive: None,
            rebalance: None,
        });
        let control = fed_of();
        let trial = fed_of();
        let ctl = control.client();
        let tri = trial.client();

        let events: Vec<Observation> = raw
            .iter()
            .flat_map(|&(r, k, v)| (0..jobs).map(move |j| job_variant(j, r, k, v)))
            .collect();
        let cut = cut_sel % (events.len() + 1);
        let job = mig_sel % jobs;

        for chunk in events[..cut].chunks(7) {
            ctl.observe_batch(chunk);
            tri.observe_batch(chunk);
        }

        // Quiesce the submitting client (a query drains its lanes,
        // FIFO), then migrate the chosen job on the trial federation.
        tri.metrics_total();
        let from = trial.member_of(job);
        let to = (from + 1 + target_sel) % members; // sometimes == from: a no-op migration
        let moved = trial.migrate_job(job, from, to)
            .expect("identically configured members must accept the snapshot");
        if from != to {
            prop_assert_eq!(trial.member_of(job), to, "route repinned");
            prop_assert!(
                !trial.member(from).client().resident_jobs().contains(&job),
                "no remnant on the source"
            );
            prop_assert_eq!(
                trial.member(to).client().resident_jobs().contains(&job),
                moved > 0,
                "moved streams are resident on the target"
            );
        } else {
            prop_assert_eq!(moved, 0, "self-migration is a no-op");
        }

        for chunk in events[cut..].chunks(7) {
            ctl.observe_batch(chunk);
            tri.observe_batch(chunk);
        }

        // Every job, every stream, every horizon: bit-identical.
        let mut queries = Vec::new();
        for j in 0..jobs {
            for rank in 0..RANKS {
                for kind in StreamKind::ALL {
                    for h in 1..=HORIZONS {
                        queries.push(Query::new(jkey(j, rank, kind), h));
                    }
                }
            }
        }
        let (mut want, mut got) = (Vec::new(), Vec::new());
        ctl.predict_batch(&queries, &mut want);
        tri.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "migration changed a prediction");

        // Rollups match too. `predictions_served` is counted only on
        // shards that ingested the job, and migration plants the
        // job's history on the target's shard 0 — a layout detail —
        // so it is normalized out.
        let normalize = |mut rolls: Vec<(JobId, mpp_engine::JobMetrics)>| {
            for (_, m) in &mut rolls { m.predictions_served = 0; }
            rolls
        };
        prop_assert_eq!(
            normalize(ctl.job_metrics()),
            normalize(tri.job_metrics()),
            "migration changed a job rollup"
        );
        prop_assert_eq!(
            control.metrics_total().events_ingested,
            trial.metrics_total().events_ingested
        );
    }
}

/// Members with different configurations refuse a migration with a
/// typed error — before either member's state is touched.
#[test]
fn migrating_between_incompatible_members_fails_cleanly() {
    let base = EngineConfig::with_shards(2);
    let with_ttl = EngineConfig {
        ttl: Some(64),
        ..EngineConfig::with_shards(2)
    };
    let fed = FederatedEngine::from_members(vec![
        mpp_engine::PersistentEngine::new(base),
        mpp_engine::PersistentEngine::new(with_ttl),
    ]);
    let client = fed.client();
    let job = (0..32u32)
        .find(|&j| fed.member_of(j) == 0)
        .expect("a job routed to member 0");
    let key = jkey(job, 0, StreamKind::Sender);
    for i in 0..20u64 {
        client.observe(key, i % 2);
    }
    let before = client.predict(key, 1);
    assert!(before.is_some());

    match fed.migrate_job(job, 0, 1) {
        Err(mpp_engine::MigrateError::Snapshot(mpp_engine::SnapshotError::ConfigMismatch(msg))) => {
            assert!(msg.contains("TTL"), "mismatch names the field: {msg}")
        }
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    // Nothing moved: still served by member 0, predictions intact.
    assert_eq!(fed.member_of(job), 0);
    assert!(fed.member(0).client().resident_jobs().contains(&job));
    assert!(!fed.member(1).client().resident_jobs().contains(&job));
    assert_eq!(client.predict(key, 1), before);
}

/// The stale-route regression pin: a rebalancer acting on an outdated
/// metrics snapshot (the route moved under it — concurrent pin,
/// earlier migration) must get a *recoverable* typed error, never a
/// library panic, and the failed call must leave both members exactly
/// as they were.
#[test]
fn migrating_from_a_stale_route_returns_not_serving_with_members_untouched() {
    let fed = FederatedEngine::new(FederationConfig::new(2, 2));
    let client = fed.client();
    let job = (0..32u32)
        .find(|&j| fed.member_of(j) == 0)
        .expect("a job routed to member 0");
    let key = jkey(job, 0, StreamKind::Sender);
    for i in 0..20u64 {
        client.observe(key, i % 2);
    }
    let before = client.predict(key, 1);
    assert!(before.is_some());
    let counts_before = (
        fed.member(0).client().metrics_total().events_ingested,
        fed.member(1).client().metrics_total().events_ingested,
    );

    // The caller believes member 1 serves the job; member 0 does.
    assert_eq!(
        fed.migrate_job(job, 1, 0),
        Err(mpp_engine::MigrateError::NotServing {
            job,
            serving: 0,
            from: 1,
        })
    );
    // Both members untouched: residency, route, predictions, counters.
    assert_eq!(fed.member_of(job), 0);
    assert!(fed.member(0).client().resident_jobs().contains(&job));
    assert!(!fed.member(1).client().resident_jobs().contains(&job));
    assert_eq!(client.predict(key, 1), before);
    assert_eq!(
        (
            fed.member(0).client().metrics_total().events_ingested,
            fed.member(1).client().metrics_total().events_ingested,
        ),
        counts_before
    );

    // Out-of-range member indices are typed errors too.
    assert_eq!(
        fed.migrate_job(job, 0, 9),
        Err(mpp_engine::MigrateError::MemberOutOfRange {
            member: 9,
            members: 2,
        })
    );
    assert_eq!(
        fed.migrate_job(job, 9, 0),
        Err(mpp_engine::MigrateError::MemberOutOfRange {
            member: 9,
            members: 2,
        })
    );
    assert!(
        fed.try_pin_job(job, 9).is_err(),
        "pin validates the member index the same way"
    );
    assert_eq!(fed.member_of(job), 0, "failed pin left the route alone");
}

/// The quiesce contract: events whose submission completed before a
/// migration are never lost at the cut, even while other threads keep
/// hammering *other* jobs on both members throughout. `migrate_job`
/// drains the source member first, so the snapshot includes every
/// fully-submitted batch — from any client, not just the migrating
/// thread's.
#[test]
fn flushed_events_survive_migration_under_concurrent_other_job_ingest() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let fed = FederatedEngine::new(FederationConfig::new(2, 2));
    let job = (0..32u32)
        .find(|&j| fed.member_of(j) == 0)
        .expect("a job routed to member 0");
    let noisy: Vec<u32> = (0..64u32).filter(|&j| j != job).take(4).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let noise = {
        let fed = fed.clone();
        let stop = Arc::clone(&stop);
        let noisy = noisy.clone();
        std::thread::spawn(move || {
            let client = fed.client();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<Observation> = noisy
                    .iter()
                    .map(|&j| Observation::new(jkey(j, (i % 4) as u32, StreamKind::Sender), i % 5))
                    .collect();
                client.observe_batch(&batch);
                i += 1;
            }
        })
    };

    // Submit the migrating job's events from a *different* client than
    // the one the migration drains implicitly — the lost-update shape
    // the old API documented away.
    let submitter = fed.client();
    const EVENTS: u64 = 500;
    for i in 0..EVENTS {
        submitter.observe_batch(&[Observation::new(
            jkey(job, (i % 3) as u32, StreamKind::Sender),
            i % 4,
        )]);
    }
    // The submissions above returned; no explicit flush of `submitter`.
    // quiesce_job + migrate_job must still capture all of them.
    fed.quiesce_job(job);
    let from = fed.member_of(job);
    let to = (from + 1) % 2;
    fed.migrate_job(job, from, to)
        .expect("identically configured members accept the move");
    stop.store(true, Ordering::Relaxed);
    noise.join().expect("noise thread");

    assert_eq!(fed.member_of(job), to);
    assert_eq!(
        fed.job_metrics_of(job).events_ingested,
        EVENTS,
        "every submitted-and-returned event survived the cut"
    );
    for j in noisy {
        assert!(
            fed.job_metrics_of(j).events_ingested > 0,
            "concurrent ingest to other jobs kept flowing"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The rebalancer acceptance property: interleaving
    /// `rebalance_epoch` calls (aggressive policy — zero headroom, no
    /// dwell, several moves per epoch) into a K-job workload leaves
    /// every prediction and per-job rollup bit-identical to the same
    /// workload with rebalancing disabled. Placement changes latency,
    /// never results.
    #[test]
    fn rebalanced_epochs_are_bit_identical_to_never_rebalancing(
        raw in prop::collection::vec((0u32..RANKS, 0u8..3, 0u64..6), 1..160),
        jobs in 2u32..5,
        members in 2usize..4,
        shards in 1usize..3,
        epoch_every in 1usize..5,
    ) {
        let dpd = DpdConfig { window: 48, max_lag: 16, ..DpdConfig::default() };
        let member_cfg = EngineConfig {
            shards,
            dpd,
            parallel_threshold: 0,
            ttl: None,
            ..EngineConfig::default()
        };
        let control = FederatedEngine::new(FederationConfig {
            members,
            member: member_cfg.clone(),
            adaptive: None,
            rebalance: None,
        });
        let trial = FederatedEngine::new(FederationConfig {
            members,
            member: member_cfg.clone(),
            adaptive: None,
            rebalance: Some(mpp_engine::RebalanceConfig {
                headroom: 0,
                max_moves_per_epoch: 4,
                min_dwell_epochs: 0,
            }),
        });
        let ctl = control.client();
        let tri = trial.client();

        let events: Vec<Observation> = raw
            .iter()
            .flat_map(|&(r, k, v)| (0..jobs).map(move |j| job_variant(j, r, k, v)))
            .collect();
        for (i, chunk) in events.chunks(13).enumerate() {
            ctl.observe_batch(chunk);
            tri.observe_batch(chunk);
            if i % epoch_every == 0 {
                trial.rebalance_epoch();
            }
        }
        trial.rebalance_epoch();

        let mut queries = Vec::new();
        for j in 0..jobs {
            for rank in 0..RANKS {
                for kind in StreamKind::ALL {
                    for h in 1..=HORIZONS {
                        queries.push(Query::new(jkey(j, rank, kind), h));
                    }
                }
            }
        }
        let (mut want, mut got) = (Vec::new(), Vec::new());
        ctl.predict_batch(&queries, &mut want);
        tri.predict_batch(&queries, &mut got);
        prop_assert_eq!(&got, &want, "rebalancing changed a prediction");

        // Rollups match modulo the migration layout detail
        // (`predictions_served` counts on shards that ingested the
        // job; migration plants history on the target's shard 0).
        let normalize = |mut rolls: Vec<(JobId, mpp_engine::JobMetrics)>| {
            for (_, m) in &mut rolls { m.predictions_served = 0; }
            rolls
        };
        prop_assert_eq!(
            normalize(ctl.job_metrics()),
            normalize(tri.job_metrics()),
            "rebalancing changed a job rollup"
        );
        prop_assert_eq!(
            control.metrics_total().events_ingested,
            trial.metrics_total().events_ingested
        );
    }
}

/// Flooding then evicting job A leaves job B's predictions, periods,
/// confidence and metrics rollup exactly unchanged.
#[test]
fn evicting_and_flooding_one_job_never_changes_another() {
    let fed = FederatedEngine::new(FederationConfig::new(2, 4));
    let client = fed.client();
    const A: JobId = 1;
    const B: JobId = 2;

    // Train job B on periodic streams across several ranks.
    let mut train_b = Vec::new();
    for _ in 0..12 {
        for r in 0..RANKS {
            train_b.push(Observation::new(
                jkey(B, r, StreamKind::Sender),
                u64::from(r % 3),
            ));
            train_b.push(Observation::new(jkey(B, r, StreamKind::Size), 64));
        }
    }
    client.observe_batch(&train_b);

    // Snapshot everything observable about B.
    let keys: Vec<StreamKey> = (0..RANKS)
        .flat_map(|r| {
            [
                jkey(B, r, StreamKind::Sender),
                jkey(B, r, StreamKind::Size),
                jkey(B, r, StreamKind::Tag),
            ]
        })
        .collect();
    let snapshot = |client: &mpp_engine::FederatedClient| {
        let mut out = Vec::new();
        for &k in &keys {
            for h in 1..=HORIZONS {
                out.push(client.predict(k, h));
            }
            out.push(client.period_of(k).map(|p| p as u64));
            out.push(client.confidence_of(k).map(|c| c.to_bits()));
        }
        out
    };
    let before_preds = snapshot(&client);
    let mut before_roll = client.job_metrics_of(B);

    // Flood job A: same ranks and kinds, lots of noisy traffic, on
    // both its hash member and (via pin changes) everywhere.
    let mut flood = Vec::new();
    for i in 0..5_000u64 {
        flood.push(Observation::new(
            jkey(
                A,
                (i % u64::from(RANKS)) as u32,
                StreamKind::ALL[(i % 3) as usize],
            ),
            i * 7919 % 13,
        ));
    }
    client.observe_batch(&flood);
    fed.pin_job(A, (fed.member_of(A) + 1) % 2); // strand state, retrain
    client.observe_batch(&flood);
    assert!(fed.evict_job(A) > 0, "flooded job had resident streams");
    client.sweep_expired();

    // B is untouched: predictions, periods, confidence, rollup.
    let after_preds = snapshot(&client);
    assert_eq!(before_preds, after_preds, "job B's predictions changed");
    let after_roll = client.job_metrics_of(B);
    // The snapshots themselves served predictions; account for exactly
    // those and require everything else identical.
    before_roll.predictions_served = after_roll.predictions_served;
    assert_eq!(before_roll, after_roll, "job B's rollup changed");
    assert_eq!(
        after_roll.evicted, 0,
        "evicting A must not evict any of B's streams"
    );
    assert!(fed.resident_jobs().contains(&B));
    assert!(!fed.resident_jobs().contains(&A), "A fully reclaimed");
}

/// Chaos: a shard worker killed inside one member mid-run surfaces
/// `FederationWorkerGone` with exact job/member/shard attribution,
/// while jobs served by other members — including legs in the same
/// mixed batch — keep flowing.
#[test]
fn dead_member_worker_attributes_job_and_member_and_spares_other_jobs() {
    let fed = FederatedEngine::new(FederationConfig::new(2, 2));
    let client = fed.client();

    // Two jobs on two different members.
    let job_a = (0..32u32)
        .find(|&j| fed.member_of(j) == 0)
        .expect("job on member 0");
    let job_b = (0..32u32)
        .find(|&j| fed.member_of(j) == 1)
        .expect("job on member 1");
    let ka = jkey(job_a, 0, StreamKind::Sender);
    let kb = jkey(job_b, 0, StreamKind::Sender);
    for i in 0..20u64 {
        client.observe_batch(&[Observation::new(ka, i % 2), Observation::new(kb, i % 3)]);
    }
    assert_eq!(client.period_of(ka), Some(2));
    assert_eq!(client.period_of(kb), Some(3));

    // Kill the worker serving job A's rank inside member 0.
    let dead_shard = fed.member(0).shard_for_job(job_a, 0);
    fed.member(0).debug_kill_worker(dead_shard, true);

    // Mid-run submission: the mixed batch errs with job A / member 0 /
    // the dead shard — and job B's leg was still dispatched first.
    // (Federation-wide metrics would broadcast into the dead member
    // and fail loudly — correct behaviour — so B's rollup is read from
    // its own, healthy member.)
    let b_rollup = || {
        fed.member(1)
            .client()
            .job_metrics()
            .into_iter()
            .find(|&(j, _)| j == job_b)
            .map(|(_, m)| m)
            .unwrap_or_default()
    };
    let b_before = b_rollup().events_ingested;
    let err = client
        .try_observe_batch(&[
            Observation::new(ka, 0),
            Observation::new(kb, 20 % 3), // continues B's period-3 pattern
        ])
        .expect_err("dead lane must surface");
    assert_eq!(
        err,
        FederationWorkerGone {
            job: job_a,
            member: 0,
            gone: WorkerGone { shard: dead_shard },
            // Job B's leg landed on its healthy member and the error
            // accounts for it, so callers never blind-retry it.
            outcome: ObserveOutcome {
                enqueued: 1,
                shed: 0
            },
        }
    );
    let msg = err.to_string();
    assert!(
        msg.contains("member 0") && msg.contains(&format!("job {job_a}")),
        "attribution missing from message: {msg}"
    );
    assert_eq!(
        b_rollup().events_ingested,
        b_before + 1,
        "healthy member's leg in the failing batch still ingested"
    );

    // Job B keeps serving end to end (pattern continues from i = 21).
    for i in 21..30u64 {
        assert!(client
            .try_observe_batch(&[Observation::new(kb, i % 3)])
            .expect("member 1 is healthy")
            .complete());
    }
    assert_eq!(client.predict(kb, 1), Some(0), "last value was 29 % 3 = 2");
    assert_eq!(client.period_of(kb), Some(3));

    // Single-job fast path gets the same attribution.
    let err = client
        .try_observe_batch(&[Observation::new(ka, 1)])
        .expect_err("dead lane again");
    assert_eq!((err.job, err.member), (job_a, 0));
    assert_eq!(
        err.outcome,
        ObserveOutcome::default(),
        "nothing landed on a healthy member in a single-job batch"
    );
}

/// Satellite of the durability PR: `quiesce_job` is idempotent and
/// typed. Draining twice is a no-op barrier reporting the same route,
/// and quiescing a job the federation has never seen drains its
/// hash-routed member and reports `resident: false` — orchestration
/// code (the rebalancer, operators scripting migrations) can call it
/// defensively without special-casing.
#[test]
fn quiesce_job_is_idempotent_and_reports_residency() {
    let fed = FederatedEngine::new(FederationConfig::new(2, 2));
    let client = fed.client();
    let job = (0..32u32)
        .find(|&j| fed.member_of(j) == 0)
        .expect("a job routed to member 0");
    for i in 0..20u64 {
        client.observe_batch(&[Observation::new(
            jkey(job, (i % 2) as u32, StreamKind::Sender),
            i % 3,
        )]);
    }

    let first = fed.quiesce_job(job);
    assert_eq!((first.job, first.member), (job, 0));
    assert!(first.resident, "ingested job has resident streams");

    // Double drain: same typed answer, nothing changes.
    let second = fed.quiesce_job(job);
    assert_eq!(second, first, "double drain is a no-op");
    assert_eq!(
        fed.job_metrics_of(job).events_ingested,
        20,
        "quiescing twice ingests nothing new"
    );
    assert_eq!(
        client.predict(jkey(job, 0, StreamKind::Sender), 1),
        client.predict(jkey(job, 0, StreamKind::Sender), 1),
        "predictions unchanged across drains"
    );

    // Unknown job: drains the hash-routed member, reports no residency.
    let unknown = (0..64u32)
        .find(|&j| !fed.resident_jobs().contains(&j))
        .expect("an unseen job id");
    let report = fed.quiesce_job(unknown);
    assert_eq!(report.job, unknown);
    assert_eq!(report.member, fed.member_of(unknown));
    assert!(!report.resident, "never-seen job has no resident streams");
    assert_eq!(
        fed.quiesce_job(unknown),
        report,
        "unknown-job drain is idempotent too"
    );

    // A quiesced-then-evicted job reports non-resident afterwards.
    fed.evict_job(job);
    assert!(!fed.quiesce_job(job).resident, "evicted state is gone");
}
