//! Crash-recovery fault injection for the durable observation log.
//!
//! The durability contract under test: a durable engine killed at *any*
//! byte of its log — torn frame, half-written header, vanished tail —
//! recovers to a state from which replaying the missing events lands
//! bit-identical to a run that never crashed. Corruption is never a
//! panic and never partially applied: a torn tail truncates (flagged in
//! the report and, with telemetry, as a `wal_truncated` flight event),
//! a corrupt snapshot falls back to the previous one, and retention
//! never deletes state recovery could still need.

use mpp_engine::{
    DurabilityConfig, EngineClient, EngineConfig, FederatedEngine, FederationConfig, FlightKind,
    Observation, PersistentEngine, StreamKey, StreamKind, TelemetryConfig,
};
use proptest::prelude::*;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const RANKS: u32 = 4;
const BATCH: usize = 64;

/// Fresh per-test scratch directory (removed up front so a crashed
/// previous run cannot leak state in).
fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpp-wal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Deterministic, predictable workload: every rank cycles a short
/// pattern on each stream kind, so recovery errors show up as hit-rate
/// and prediction differences, not just event counts.
fn workload(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let rank = (i as u32) % RANKS;
            let kind = StreamKind::ALL[(i / RANKS as usize) % 3];
            let step = i / (RANKS as usize * 3);
            let period = 2 + (rank as usize % 3);
            Observation::new(StreamKey::new(rank, kind), (step % period) as u64)
        })
        .collect()
}

/// Everything deterministic about an engine's state: scoring counters
/// plus live predictions across every stream and horizon. (Raw snapshot
/// bytes also carry timing-dependent queue stats, so they are not a
/// stable fingerprint.)
fn fingerprint(client: &EngineClient) -> (Vec<u64>, Vec<Option<u64>>) {
    let t = client.metrics_total();
    let counters = vec![
        t.events_ingested,
        t.hits,
        t.misses,
        t.abstentions,
        t.period_churn,
        t.evicted,
        t.resident_streams,
    ];
    let mut preds = Vec::new();
    for rank in 0..RANKS {
        for kind in StreamKind::ALL {
            for horizon in 1..=3 {
                preds.push(client.predict(StreamKey::new(rank, kind), horizon));
            }
        }
    }
    (counters, preds)
}

/// The uninterrupted reference: the same events through a log-free
/// engine in the same batches.
fn reference(events: &[Observation], shards: usize) -> (Vec<u64>, Vec<Option<u64>>) {
    let engine = PersistentEngine::new(EngineConfig::with_shards(shards));
    let client = engine.client();
    for chunk in events.chunks(BATCH) {
        client.observe_batch(chunk);
    }
    fingerprint(&client)
}

/// Runs `events` through a durable engine with a checkpoint at the
/// midpoint batch boundary, then drops it (joining the log writer), so
/// the directory holds a snapshot anchor plus a live log tail.
fn durable_run(events: &[Observation], cfg: EngineConfig) {
    let mid = events.len() / 2;
    let engine = PersistentEngine::new(cfg);
    let client = engine.client();
    let mut submitted = 0usize;
    for chunk in events.chunks(BATCH) {
        client.observe_batch(chunk);
        submitted += chunk.len();
        if submitted.saturating_sub(chunk.len()) < mid && submitted >= mid {
            client.checkpoint().expect("checkpoint");
        }
    }
    engine.sync_wal();
}

/// Segment files under `dir`, ascending by start stamp (filename order).
fn segments(dir: &Path) -> Vec<PathBuf> {
    named(dir, "wal-", ".seg")
}

/// Snapshot files under `dir`, ascending by watermark (filename order).
fn snapshots(dir: &Path) -> Vec<PathBuf> {
    named(dir, "snap-", ".snap")
}

fn named(dir: &Path, prefix: &str, suffix: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .expect("durability dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(suffix))
        })
        .collect();
    out.sort();
    out
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: kill the durable engine at *any* byte
    /// of its newest segment (a crash leaves an arbitrary prefix of the
    /// tail on disk), recover, replay the events the recovered state
    /// had not yet ingested — and land bit-identical to an
    /// uninterrupted run. `frac` sweeps the cut across the whole file,
    /// including inside the segment header and exactly at the end (a
    /// clean log).
    #[test]
    fn kill_at_any_byte_recovers_and_converges(
        frac in 0u64..10_001,
        shards in 1usize..4,
    ) {
        let events = workload(1800);
        let dir = tmp(&format!("kill-{}", CASE.fetch_add(1, Ordering::SeqCst)));
        // Small segments force rotation, so the cut can land in a
        // fresh segment, a retained one, or the header of either.
        let durability = DurabilityConfig::new(&dir).with_segment_bytes(8 * 1024);
        durable_run(
            &events,
            EngineConfig::with_shards(shards).with_durability(durability.clone()),
        );

        let torn = segments(&dir).pop().expect("at least one segment");
        let len = fs::metadata(&torn).expect("segment metadata").len();
        let cut = len * frac / 10_000;
        OpenOptions::new()
            .write(true)
            .open(&torn)
            .expect("open segment")
            .set_len(cut)
            .expect("truncate segment");

        let (engine, report) =
            PersistentEngine::recover(EngineConfig::with_shards(shards).with_durability(durability))
                .expect("recovery never fails on a truncated tail");
        let client = engine.client();
        let skip = report.events() as usize;
        prop_assert!(skip <= events.len(), "clock never runs ahead of the trace");
        prop_assert_eq!(
            skip.is_multiple_of(BATCH) || skip == events.len(),
            true,
            "frames are whole batches, so the clock lands on a batch boundary"
        );
        prop_assert_eq!(client.metrics_total().events_ingested, report.events());
        for chunk in events[skip..].chunks(BATCH) {
            client.observe_batch(chunk);
        }
        prop_assert_eq!(fingerprint(&client), reference(&events, shards));
        drop(client);
        drop(engine);
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// A torn frame appended by a crash mid-write is truncated back to the
/// last valid frame — reported, flagged as a `wal_truncated` flight
/// event, and physically removed so the next append continues cleanly.
#[test]
fn torn_tail_is_truncated_and_flagged() {
    let events = workload(600);
    let dir = tmp("torn");
    let cfg = || {
        EngineConfig::with_shards(2)
            .with_durability(DurabilityConfig::new(&dir))
            .with_telemetry(TelemetryConfig::enabled())
    };
    durable_run(&events, cfg());

    let torn = segments(&dir).pop().expect("segment");
    let clean_len = fs::metadata(&torn).expect("metadata").len();
    // A frame prefix promising more bytes than the file holds: the
    // classic half-flushed append.
    let mut f = OpenOptions::new().append(true).open(&torn).expect("open");
    f.write_all(&[0x40, 0, 0, 0, 0xde, 0xad, 0xbe])
        .expect("tear");
    drop(f);

    let (engine, report) = PersistentEngine::recover(cfg()).expect("recover");
    assert!(report.wal_truncated, "the tear must be reported");
    assert_eq!(report.events(), events.len() as u64, "no valid frame lost");
    assert_eq!(report.snapshots_skipped, 0);
    assert_eq!(
        fs::metadata(&torn).expect("metadata").len(),
        clean_len,
        "repair truncates the file back to its valid prefix"
    );
    let flight = engine
        .client()
        .telemetry()
        .expect("telemetry enabled")
        .flight()
        .to_vec();
    assert!(
        flight.iter().any(|e| e.kind == FlightKind::WalTruncated),
        "recovery records the truncation in the flight recorder"
    );
    // The recovered engine keeps appending to the repaired log.
    let client = engine.client();
    client.observe_batch(&workload(620)[600..]);
    assert_eq!(
        client.metrics_total().events_ingested,
        620,
        "ingest continues past recovery"
    );
    drop(client);
    drop(engine);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A segment cut inside its 11-byte header carries no readable frames:
/// repair drops the file entirely and recovery proceeds from whatever
/// the snapshot and earlier segments cover — here, nothing, so the
/// engine restarts empty rather than panicking or half-applying.
#[test]
fn segment_truncated_inside_the_header_restarts_empty() {
    let events = workload(300);
    let dir = tmp("header");
    let cfg = || EngineConfig::with_shards(2).with_durability(DurabilityConfig::new(&dir));
    // No checkpoint: the log is the only persistent state.
    let engine = PersistentEngine::new(cfg());
    let client = engine.client();
    for chunk in events.chunks(BATCH) {
        client.observe_batch(chunk);
    }
    engine.sync_wal();
    drop(client);
    drop(engine);

    let seg = segments(&dir).pop().expect("segment");
    OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open")
        .set_len(3)
        .expect("truncate into header");

    let (engine, report) = PersistentEngine::recover(cfg()).expect("recover");
    assert!(report.wal_truncated);
    assert_eq!(report.events(), 0, "nothing valid survived the cut");
    // Replaying the whole trace lands on the reference state.
    let client = engine.client();
    for chunk in events.chunks(BATCH) {
        client.observe_batch(chunk);
    }
    assert_eq!(fingerprint(&client), reference(&events, 2));
    drop(client);
    drop(engine);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// A corrupt newest snapshot is skipped in favour of the previous one
/// (retention always keeps two), at the cost of a longer log replay —
/// never an error, never a partial restore.
#[test]
fn corrupt_snapshot_falls_back_to_the_previous_one() {
    let events = workload(1800);
    let dir = tmp("snapfall");
    // Default (large) segments: the whole log stays in one file, so
    // falling back past the newest watermark still has full coverage.
    let cfg = || EngineConfig::with_shards(2).with_durability(DurabilityConfig::new(&dir));
    let engine = PersistentEngine::new(cfg());
    let client = engine.client();
    let mut watermarks = Vec::new();
    for (i, chunk) in events.chunks(BATCH).enumerate() {
        client.observe_batch(chunk);
        if i == 8 || i == 18 {
            watermarks.push(
                client
                    .checkpoint()
                    .expect("checkpoint")
                    .expect("durability configured"),
            );
        }
    }
    engine.sync_wal();
    drop(client);
    drop(engine);

    let snaps = snapshots(&dir);
    assert_eq!(snaps.len(), 2, "retention keeps the newest two snapshots");
    let newest = snaps.last().expect("newest snapshot");
    let mut bytes = fs::read(newest).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    fs::write(newest, &bytes).expect("corrupt snapshot");

    let (engine, report) = PersistentEngine::recover(cfg()).expect("recover");
    assert_eq!(report.snapshots_skipped, 1, "the corrupt newest is skipped");
    assert_eq!(
        report.snapshot_events, watermarks[0],
        "recovery anchors on the previous snapshot"
    );
    assert_eq!(
        report.events(),
        events.len() as u64,
        "the log replays everything past the older anchor"
    );
    assert!(!report.wal_truncated, "the log itself is clean");
    let client = engine.client();
    assert_eq!(fingerprint(&client), reference(&events, 2));
    drop(client);
    drop(engine);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Retention after repeated checkpoints: all but the two newest
/// snapshots go, segments fully covered by the newest snapshot go —
/// and what remains still recovers the complete state.
#[test]
fn retention_prunes_stale_artifacts_without_losing_state() {
    let events = workload(2400);
    let dir = tmp("retain");
    let cfg = || {
        EngineConfig::with_shards(2)
            .with_durability(DurabilityConfig::new(&dir).with_segment_bytes(4 * 1024))
    };
    let engine = PersistentEngine::new(cfg());
    let client = engine.client();
    for (i, chunk) in events.chunks(BATCH).enumerate() {
        client.observe_batch(chunk);
        if i % 8 == 7 {
            client.checkpoint().expect("checkpoint");
        }
    }
    engine.sync_wal();
    drop(client);
    drop(engine);

    assert_eq!(
        snapshots(&dir).len(),
        2,
        "only the newest snapshot and its fallback remain"
    );
    // 2400 events in ~1.1 KiB frames across 4 KiB segments rotate many
    // times; retention must have pruned the fully-covered ones.
    let remaining = segments(&dir).len();
    assert!(
        remaining < 10,
        "covered segments were pruned ({remaining} left)"
    );

    let (engine, report) = PersistentEngine::recover(cfg()).expect("recover");
    assert_eq!(report.events(), events.len() as u64);
    assert_eq!(fingerprint(&engine.client()), reference(&events, 2));
    drop(engine);
    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Federated recovery: per-member logs rebuild every member, and the
/// persisted pin table restores routing — a job migrated before the
/// crash is still served by its new member afterwards, with its
/// scoring rollup intact.
#[test]
fn federated_recovery_preserves_pins_and_member_state() {
    let dir = tmp("fed");
    let cfg = || {
        FederationConfig::new(2, 2).member_config(
            EngineConfig::with_shards(2).with_durability(DurabilityConfig::new(&dir)),
        )
    };
    let jobs = 3u32;
    let events: Vec<Observation> = workload(900)
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            Observation::new(
                StreamKey::for_job((i as u32) % jobs, o.key.rank, o.key.kind),
                o.value,
            )
        })
        .collect();

    let fed = FederatedEngine::new(cfg());
    let fc = fed.client();
    for chunk in events[..600].chunks(BATCH) {
        fc.observe_batch(chunk);
    }
    // Move job 1 to the other member; the durable migration checkpoints
    // both sides and persists the pin.
    let from = fed.member_of(1);
    let to = 1 - from;
    fed.migrate_job(1, from, to).expect("migrate");
    for chunk in events[600..].chunks(BATCH) {
        fc.observe_batch(chunk);
    }
    let before_jobs = fed.job_metrics();
    let key = StreamKey::for_job(1, 0, StreamKind::Sender);
    let before_pred = fc.predict(key, 1);
    drop(fc);
    drop(fed);

    let (fed, report) = FederatedEngine::recover(cfg()).expect("recover");
    assert_eq!(report.members.len(), 2);
    assert_eq!(report.pins_restored, 1, "the migration pin came back");
    assert_eq!(fed.member_of(1), to, "the pinned route survives the crash");
    assert_eq!(
        report.events(),
        events.len() as u64,
        "both members recovered their full streams"
    );
    assert_eq!(fed.job_metrics(), before_jobs);
    assert_eq!(fed.client().predict(key, 1), before_pred);
    // The recovered federation keeps serving and migrating.
    fed.migrate_job(1, to, from).expect("migrate back");
    assert_eq!(fed.member_of(1), from);
    drop(fed);
    fs::remove_dir_all(&dir).expect("cleanup");
}
