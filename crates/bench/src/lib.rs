//! Criterion benchmark crate — see `benches/` for the harnesses.
//!
//! * `dpd_overhead` — per-observation cost of the detector/predictor, the
//!   §4.2 "small overhead" claim.
//! * `predictors` — throughput comparison of the whole predictor roster.
//! * `simulator` — message throughput of the MPI substrate.
//! * `figures` — time to regenerate each paper table/figure end to end.
