//! Throughput of the MPI-simulator substrate: point-to-point message
//! rate and collective-operation rate, including trace capture.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpp_mpisim::net::JitterNetwork;
use mpp_mpisim::{Comm, ReduceOp, World, WorldConfig};

fn bench_ring(c: &mut Criterion) {
    const ROUNDS: usize = 200;
    let mut g = c.benchmark_group("simulator_ring");
    for procs in [4usize, 16] {
        g.throughput(Throughput::Elements((ROUNDS * procs) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter(|| {
                let cfg = WorldConfig::new(procs).seed(1);
                let net = JitterNetwork::from_config(&cfg);
                let trace = World::new(cfg, net).run(&|cm: &mut Comm| {
                    let next = (cm.rank() + 1) % cm.size();
                    let prev = (cm.rank() + cm.size() - 1) % cm.size();
                    for r in 0..ROUNDS as u64 {
                        cm.send(next, 1, 1024, r);
                        cm.recv(prev, 1);
                    }
                });
                black_box(trace.total_receives())
            });
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    const ROUNDS: usize = 50;
    let mut g = c.benchmark_group("simulator_collectives");
    for procs in [8usize, 32] {
        g.throughput(Throughput::Elements((ROUNDS * procs) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter(|| {
                let cfg = WorldConfig::new(procs).seed(2);
                let net = JitterNetwork::from_config(&cfg);
                let trace = World::new(cfg, net).run(&|cm: &mut Comm| {
                    for r in 0..ROUNDS as u64 {
                        cm.allreduce(64, r, ReduceOp::Sum);
                    }
                });
                black_box(trace.total_receives())
            });
        });
    }
    g.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    const ROUNDS: usize = 30;
    let procs = 16;
    let mut g = c.benchmark_group("simulator_alltoall");
    g.throughput(Throughput::Elements((ROUNDS * procs * procs) as u64));
    g.bench_function("16_ranks", |b| {
        b.iter(|| {
            let cfg = WorldConfig::new(procs).seed(3);
            let net = JitterNetwork::from_config(&cfg);
            let trace = World::new(cfg, net).run(&|cm: &mut Comm| {
                let vals: Vec<u64> = (0..cm.size() as u64).collect();
                for _ in 0..ROUNDS {
                    cm.alltoall(512, &vals);
                }
            });
            black_box(trace.total_receives())
        });
    });
    g.finish();
}

/// Short sampling profile so the full suite stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_ring, bench_collectives, bench_alltoall);
criterion_main!(benches);
