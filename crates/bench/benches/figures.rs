//! End-to-end time to regenerate each paper artefact at class S (the
//! structure-preserving scaled-down class): one bench per table/figure,
//! covering workload simulation, stream extraction, and — for the
//! figures — prediction/evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mpp_core::dpd::DpdConfig;
use mpp_core::eval::evaluate_stream;
use mpp_core::predictors::PredictorKind;
use mpp_experiments::{accuracy_row, Level, Target, TracedRun};
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};
use mpp_runtime::{simulate_buffers, BufferPolicy};

fn small_configs() -> Vec<BenchmarkConfig> {
    vec![
        BenchmarkConfig::new(BenchId::Bt, 4, Class::S),
        BenchmarkConfig::new(BenchId::Cg, 4, Class::S),
        BenchmarkConfig::new(BenchId::Lu, 4, Class::S),
        BenchmarkConfig::new(BenchId::Is, 4, Class::S),
        BenchmarkConfig::new(BenchId::Sweep3d, 4, Class::S),
    ]
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_census_classS", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for cfg in small_configs() {
                let run = TracedRun::execute(cfg, 1);
                total += run.census.p2p_msgs + run.census.coll_msgs;
            }
            black_box(total)
        });
    });
}

fn bench_fig1_period_detection(c: &mut Criterion) {
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Bt, 9, Class::S), 1);
    let stream = run.stream(Level::Physical, Target::Sender).to_vec();
    c.bench_function("fig1_period_detection", |b| {
        b.iter(|| {
            let mut det = mpp_core::dpd::PeriodicityDetector::new(DpdConfig {
                window: 128,
                max_lag: 64,
                tolerance: 0.2,
                ..DpdConfig::default()
            });
            for &v in &stream {
                det.observe(v);
            }
            black_box(det.period())
        });
    });
}

fn bench_fig2_stream_extraction(c: &mut Criterion) {
    c.bench_function("fig2_logical_vs_physical", |b| {
        b.iter(|| {
            let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Bt, 4, Class::S), 1);
            let diffs = run
                .logical
                .senders
                .iter()
                .zip(&run.physical.senders)
                .filter(|(a, b)| a != b)
                .count();
            black_box(diffs)
        });
    });
}

fn bench_fig3_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_accuracy_sweep");
    for (name, level) in [
        ("fig3_logical", Level::Logical),
        ("fig4_physical", Level::Physical),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &level, |b, &level| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for cfg in small_configs() {
                    let run = TracedRun::execute(cfg, 1);
                    let row = accuracy_row(&run, level, Target::Sender);
                    acc += row.at(1).unwrap_or(0.0);
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

fn bench_scalability_policies(c: &mut Criterion) {
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Bt, 9, Class::S), 1);
    let stream: Vec<(u64, u64)> = run
        .physical
        .senders
        .iter()
        .zip(&run.physical.sizes)
        .map(|(&s, &b)| (s, b))
        .collect();
    c.bench_function("scalability_buffer_policy", |b| {
        b.iter(|| {
            let out = simulate_buffers(
                BufferPolicy::Predictive { depth: 5 },
                &stream,
                9,
                16 * 1024,
                &DpdConfig::default(),
            );
            black_box(out.hit_rate())
        });
    });
}

fn bench_ablation_roster(c: &mut Criterion) {
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Bt, 9, Class::S), 1);
    let stream = run.stream(Level::Logical, Target::Sender).to_vec();
    let cfg = DpdConfig {
        window: 128,
        max_lag: 64,
        ..DpdConfig::default()
    };
    c.bench_function("ablation_roster_classS", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for kind in PredictorKind::ALL {
                let tracker = evaluate_stream(kind.build(&cfg), &stream, 5);
                acc += tracker.mean_accuracy().unwrap_or(0.0);
            }
            black_box(acc)
        });
    });
}

/// Short sampling profile so the full suite stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_table1,
    bench_fig1_period_detection,
    bench_fig2_stream_extraction,
    bench_fig3_fig4,
    bench_scalability_policies,
    bench_ablation_roster
);
criterion_main!(benches);
