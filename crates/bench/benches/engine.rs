//! Engine ingest/serve throughput: the serving-layer numbers the
//! ROADMAP's production-scale goal regresses against.
//!
//! Two outputs:
//!
//! * criterion-style stdout lines for `observe_batch` (per shard
//!   count) and `predict_batch`;
//! * `BENCH_engine.json` at the workspace root — events/sec per shard
//!   count measured directly with `Instant`, so later PRs have a fixed
//!   perf trajectory file to diff (in the reproducible-benchmarking
//!   spirit of Hunold & Carpen-Amarie: fixed workload, fixed seeds,
//!   machine parallelism recorded alongside the numbers).

use criterion::{black_box, criterion_group, Criterion, Throughput};
use mpp_engine::{Engine, EngineConfig, Observation, Query, StreamKey, StreamKind};
use std::time::Instant;

/// Ranks in the synthetic workload.
const RANKS: u32 = 192;
/// Events per rank per batch (spread over sender/size/tag streams).
const EVENTS_PER_RANK: usize = 96;
/// Shard counts measured for the JSON trajectory.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timed batches per shard count.
const TIMED_BATCHES: usize = 6;

/// Deterministic multi-rank workload: every rank carries three periodic
/// attribute streams with rank-dependent periods, interleaved
/// round-robin across ranks so batch partitioning is exercised.
fn synthetic_batch() -> Vec<Observation> {
    let mut out = Vec::with_capacity(RANKS as usize * EVENTS_PER_RANK);
    for step in 0..EVENTS_PER_RANK / 3 {
        for rank in 0..RANKS {
            let sp = 2 + (rank as usize % 7);
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Sender),
                ((step + rank as usize) % sp) as u64,
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Size),
                [512u64, 4096, 1 << 20][(step + rank as usize) % 3],
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Tag),
                (step % 2) as u64,
            ));
        }
    }
    out
}

fn engine_with(shards: usize) -> Engine {
    Engine::new(EngineConfig {
        // Threshold 0: measure the true parallel path even for the
        // warm-up batch.
        parallel_threshold: 0,
        ..EngineConfig::with_shards(shards)
    })
}

/// Directly measured ingest rate (events/sec) at `shards` shards.
fn measure_events_per_sec(shards: usize, batch: &[Observation]) -> f64 {
    let mut engine = engine_with(shards);
    engine.observe_batch(batch); // warm: allocate slots, intern symbols
    let start = Instant::now();
    for _ in 0..TIMED_BATCHES {
        engine.observe_batch(batch);
    }
    let secs = start.elapsed().as_secs_f64();
    (TIMED_BATCHES * batch.len()) as f64 / secs.max(1e-12)
}

fn bench_observe_batch(c: &mut Criterion) {
    let batch = synthetic_batch();
    let mut g = c.benchmark_group("engine_observe_batch");
    g.throughput(Throughput::Elements(batch.len() as u64));
    for shards in SHARD_COUNTS {
        g.bench_function(format!("{shards}shard"), |b| {
            let mut engine = engine_with(shards);
            engine.observe_batch(&batch);
            b.iter(|| {
                engine.observe_batch(black_box(&batch));
                black_box(engine.metrics_total().events_ingested)
            });
        });
    }
    g.finish();
}

fn bench_predict_batch(c: &mut Criterion) {
    let batch = synthetic_batch();
    let queries: Vec<Query> = (0..RANKS)
        .flat_map(|r| {
            StreamKind::ALL
                .into_iter()
                .flat_map(move |k| (1..=5).map(move |h| Query::new(StreamKey::new(r, k), h)))
        })
        .collect();
    let mut g = c.benchmark_group("engine_predict_batch");
    g.throughput(Throughput::Elements(queries.len() as u64));
    for shards in [1usize, 8] {
        g.bench_function(format!("{shards}shard"), |b| {
            let mut engine = engine_with(shards);
            for _ in 0..4 {
                engine.observe_batch(&batch);
            }
            let mut out = Vec::new();
            b.iter(|| {
                engine.predict_batch(black_box(&queries), &mut out);
                black_box(out.iter().filter(|p| p.is_some()).count())
            });
        });
    }
    g.finish();
}

/// Writes the events/sec trajectory to `BENCH_engine.json` at the
/// workspace root.
fn write_bench_json() {
    let batch = synthetic_batch();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut results = Vec::new();
    for shards in SHARD_COUNTS {
        let eps = measure_events_per_sec(shards, &batch);
        println!("engine ingest {shards:>2} shard(s): {:>10.0} events/s", eps);
        results.push((shards, eps));
    }
    let single = results[0].1;
    let best_multi = results[1..]
        .iter()
        .map(|&(_, e)| e)
        .fold(f64::MIN, f64::max);
    let entries: Vec<String> = results
        .iter()
        .map(|&(s, e)| format!("    {{\"shards\": {s}, \"events_per_sec\": {e:.0}}}"))
        .collect();
    // Below 4 cores the multi-shard "speedup" is mostly scheduling and
    // cache-locality noise, not scaling evidence — say so in the
    // artifact rather than leaving a misleading baseline.
    let note = if cores < 4 {
        ",\n  \"note\": \"measured on fewer than 4 cores; \
         multi_shard_speedup is not scaling evidence, re-baseline on >=4 cores\""
    } else {
        ""
    };
    let json = format!(
        "{{\n  \"bench\": \"engine_observe_batch\",\n  \"ranks\": {RANKS},\n  \
         \"events_per_batch\": {},\n  \"timed_batches\": {TIMED_BATCHES},\n  \
         \"cores\": {cores},\n  \"results\": [\n{}\n  ],\n  \
         \"best_multi_shard_speedup\": {:.3}{note}\n}}\n",
        batch.len(),
        entries.join(",\n"),
        best_multi / single.max(1e-12),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_observe_batch, bench_predict_batch);

fn main() {
    benches();
    write_bench_json();
}
