//! Engine ingest/serve throughput: the serving-layer numbers the
//! ROADMAP's production-scale goal regresses against.
//!
//! Two outputs:
//!
//! * criterion-style stdout lines for `observe_batch` (per execution
//!   mode and shard count) and `predict_batch`;
//! * `BENCH_engine.json` at the workspace root — events/sec per
//!   (mode, shard count) measured directly with `Instant`, so later
//!   PRs have a fixed perf trajectory file to diff (in the
//!   reproducible-benchmarking spirit of Hunold & Carpen-Amarie:
//!   fixed workload, fixed seeds, machine parallelism recorded
//!   alongside the numbers, best-of-`RUNS` to damp scheduler noise).
//!
//! The comparison that matters for the persistent-worker design: at
//! every shard count, `"mode": "persistent"` (long-lived channel-fed
//! workers) must not lose to `"mode": "scoped"` (threads spawned per
//! batch) — the JSON records both so the regression is visible.
//!
//! Since the slab-backed stream tables (PR 5) the JSON also carries a
//! `churn` section — eviction-heavy ingest throughput, per-event
//! observe latency percentiles, and `evict_lru` cost at two resident-
//! set sizes (which must stay flat: victim selection reads a bounded
//! LRU window, never a full sort) — plus the PR 4 numbers under
//! `baseline_pr4` so the speedup is auditable in one file.
//!
//! `--smoke` (used by CI) runs every measurement path with tiny
//! parameters and does **not** rewrite `BENCH_engine.json`: it keeps
//! the bench code compiling and executing without publishing noisy
//! numbers.

use criterion::{black_box, criterion_group, Criterion, Throughput};
use mpp_core::dpd::DpdConfig;
use mpp_engine::{
    BackpressurePolicy, DurabilityConfig, Engine, EngineConfig, EnsembleConfig, FederatedEngine,
    FederationConfig, FlushPolicy, Observation, PersistentEngine, Query, RebalanceConfig,
    StreamKey, StreamKind, TelemetryConfig,
};
use std::time::{Duration, Instant};

/// Ranks in the synthetic workload.
const RANKS: u32 = 192;
/// Events per rank per batch (spread over sender/size/tag streams).
const EVENTS_PER_RANK: usize = 96;
/// Shard counts measured for the JSON trajectory.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Observe-lane capacities measured for the bounded-ingest saturation
/// trajectory (at `BOUNDED_SHARDS` shards, `Block` policy).
const QUEUE_CAPS: [usize; 3] = [1, 8, 64];
/// Shard count used for the bounded-lane measurements.
const BOUNDED_SHARDS: usize = 4;
/// Member counts measured for the federation trajectory.
const MEMBER_COUNTS: [usize; 3] = [1, 2, 4];
/// Interleaved job copies in the federation workload (fixed across
/// member counts so the event stream is identical and only the member
/// count varies).
const FED_JOBS: u32 = 4;
/// Shards per federation member (kept small so total worker threads
/// stay proportional to the member count).
const FED_SHARDS: usize = 2;
/// Member count for the rebalance A/B (the smallest federation where
/// placement matters).
const REBALANCE_MEMBERS: usize = 2;
/// Timed batches per measurement run.
const TIMED_BATCHES: usize = 6;
/// Measurement runs per (mode, shard count); best-of damps noise. On
/// the shared 1-core measurement container, scheduler interference
/// regularly costs a run 20–40%, so the best-of needs enough attempts
/// to catch a quiet slice (interleaved A/B runs against the PR 4
/// binary put the true single-shard speedup at ~1.5–1.7×).
const RUNS: usize = 5;

/// Measurement sizing, full vs `--smoke` (CI) mode.
struct Params {
    /// Best-of runs per measurement.
    runs: usize,
    /// Timed batches per run.
    timed_batches: usize,
    /// Batches sampled for the per-event latency percentiles.
    latency_batches: usize,
    /// `evict_lru` rounds per resident-set size.
    evict_rounds: usize,
    /// Resident-set sizes at which `evict_lru` cost is measured; the
    /// claim under test is that the two numbers are about equal.
    resident_sizes: [usize; 2],
    /// Whether to (re)write `BENCH_engine.json`.
    write_json: bool,
}

impl Params {
    fn full() -> Self {
        Params {
            runs: RUNS,
            timed_batches: TIMED_BATCHES,
            latency_batches: 48,
            evict_rounds: 48,
            resident_sizes: [4096, 32768],
            write_json: true,
        }
    }

    fn smoke() -> Self {
        Params {
            runs: 1,
            timed_batches: 1,
            latency_batches: 8,
            evict_rounds: 4,
            resident_sizes: [512, 2048],
            write_json: false,
        }
    }
}

/// PR 4's `BENCH_engine.json` numbers (1-core container), embedded so
/// the current file always carries the before/after pair. Auditing a
/// perf claim should not require digging through git history.
const BASELINE_PR4: &str = r#"{
    "cores": 1,
    "note": "PR 4 (pre-slab stream tables), 1-core container, measured as a multi-batch window average in a quiet window; interleaved same-window A/B reruns of the PR 4 binary during PR 5 reproduced these numbers (1.0-1.17 Melem/s single-shard), so they are a fair pre-slab reference for the min-estimator numbers above; multi-shard deltas are scheduling noise, not scaling evidence",
    "results": [
      {"mode": "scoped", "shards": 1, "events_per_sec": 1149737},
      {"mode": "persistent", "shards": 1, "events_per_sec": 1181987},
      {"mode": "scoped", "shards": 2, "events_per_sec": 1196580},
      {"mode": "persistent", "shards": 2, "events_per_sec": 1212480},
      {"mode": "scoped", "shards": 4, "events_per_sec": 1356313},
      {"mode": "persistent", "shards": 4, "events_per_sec": 1349455},
      {"mode": "scoped", "shards": 8, "events_per_sec": 1395347},
      {"mode": "persistent", "shards": 8, "events_per_sec": 1427730}
    ],
    "bounded_saturation": {"1": 1329926, "8": 1402365, "64": 1376452},
    "federation": {"1": 1132222, "2": 1100836, "4": 1111457}
  }"#;

/// PR 4 single-shard rates, for the headline speedup ratios.
const BASELINE_PR4_SCOPED_1SHARD: f64 = 1_149_737.0;
const BASELINE_PR4_PERSISTENT_1SHARD: f64 = 1_181_987.0;

/// Deterministic multi-rank workload: every rank carries three periodic
/// attribute streams with rank-dependent periods, interleaved
/// round-robin across ranks so batch partitioning is exercised.
fn synthetic_batch() -> Vec<Observation> {
    let mut out = Vec::with_capacity(RANKS as usize * EVENTS_PER_RANK);
    for step in 0..EVENTS_PER_RANK / 3 {
        for rank in 0..RANKS {
            let sp = 2 + (rank as usize % 7);
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Sender),
                ((step + rank as usize) % sp) as u64,
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Size),
                [512u64, 4096, 1 << 20][(step + rank as usize) % 3],
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Tag),
                (step % 2) as u64,
            ));
        }
    }
    out
}

fn config_with(shards: usize) -> EngineConfig {
    EngineConfig {
        // Threshold 0: measure the true parallel path even for the
        // warm-up batch.
        parallel_threshold: 0,
        ..EngineConfig::with_shards(shards)
    }
}

/// Turns the fastest completed batch into an events/sec rate. On the
/// shared 1-core measurement container a single long timing window
/// regularly loses 20–40% to scheduler interference; the fastest
/// single batch is the robust estimator of what the hardware can do
/// (the classic min-latency statistic — interference only ever adds
/// time). Every direct measurement here uses it; `runs_best_of ×
/// timed_batches` in the JSON is the total sample count behind each
/// number.
fn best_batch_rate(events: usize, batch_times: impl Iterator<Item = Duration>) -> f64 {
    let fastest = batch_times.min().expect("at least one timed batch");
    events as f64 / fastest.as_secs_f64().max(1e-12)
}

/// Directly measured scoped-mode ingest rate (events/sec).
fn measure_scoped(shards: usize, batch: &[Observation], tb: usize) -> f64 {
    measure_scoped_cfg(config_with(shards), batch, tb)
}

fn measure_scoped_cfg(cfg: EngineConfig, batch: &[Observation], tb: usize) -> f64 {
    let mut engine = Engine::new(cfg);
    engine.observe_batch(batch); // warm: allocate slots, intern symbols
    best_batch_rate(
        batch.len(),
        (0..tb).map(|_| {
            let start = Instant::now();
            engine.observe_batch(batch);
            start.elapsed()
        }),
    )
}

/// Directly measured persistent-mode ingest rate (events/sec). The
/// closing metrics round-trip queues behind every batch, so the timed
/// window covers completed work, not just enqueued work.
fn measure_persistent(shards: usize, batch: &[Observation], tb: usize) -> f64 {
    measure_persistent_cfg(config_with(shards), batch, tb)
}

/// Persistent-mode ingest rate with bounded observe lanes (`Block`
/// policy): the saturation throughput the backpressure subsystem
/// sustains at a given per-shard capacity.
fn measure_bounded(shards: usize, cap: usize, batch: &[Observation], tb: usize) -> f64 {
    measure_persistent_cfg(config_with(shards).with_queue_cap(cap), batch, tb)
}

fn measure_persistent_cfg(cfg: EngineConfig, batch: &[Observation], tb: usize) -> f64 {
    let engine = PersistentEngine::new(cfg);
    let client = engine.client();
    client.observe_batch(batch); // warm: slots, interners, leg buffers
    client.metrics_total(); // barrier: warm-up fully applied
                            // The per-batch metrics round-trip queues behind the batch, so each
                            // timed slice covers completed work, not just enqueued work.
    best_batch_rate(
        batch.len(),
        (0..tb).map(|_| {
            let start = Instant::now();
            client.observe_batch(batch);
            black_box(client.metrics_total().events_ingested);
            start.elapsed()
        }),
    )
}

/// Durable (or, with `flush: None`, log-free) single-shard persistent
/// ingest rate. Unlike the per-batch measurements, this times the
/// *whole* window and closes it with a `sync_wal` durability barrier:
/// the observation log is written by a dedicated thread, so a
/// per-batch min estimator would let the fsync cost escape the timed
/// slice entirely. Whole-window timing charges the durable arm for
/// every byte it promises is on disk; the off arm is timed identically
/// (its barrier returns immediately) so the A/B stays symmetric. Each
/// call logs into a fresh directory, removed afterwards.
fn measure_wal(flush: Option<FlushPolicy>, batch: &[Observation], tb: usize) -> f64 {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mpp-bench-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let cfg = match flush {
        Some(f) => config_with(1).with_durability(DurabilityConfig::new(&dir).with_flush(f)),
        None => config_with(1),
    };
    let engine = PersistentEngine::new(cfg);
    let client = engine.client();
    client.observe_batch(batch); // warm: slots, interners, leg buffers
    client.metrics_total();
    engine.sync_wal(); // warm-up frames on disk before the window opens
    let start = Instant::now();
    for _ in 0..tb {
        client.observe_batch(batch);
    }
    black_box(client.metrics_total().events_ingested);
    engine.sync_wal();
    let rate = (batch.len() * tb) as f64 / start.elapsed().as_secs_f64().max(1e-12);
    drop(client);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

/// Eviction-heavy scoped ingest (events/sec): the TTL is far shorter
/// than the gap between a stream's consecutive events, so every
/// observation lazily restarts its stream cold and sweeps continually
/// reclaim slots — the slab's free list and head-pop sweep under
/// maximum churn.
fn measure_ttl_churn(batch: &[Observation], tb: usize) -> f64 {
    let cfg = EngineConfig {
        ttl: Some((batch.len() / 8).max(1) as u64),
        ..config_with(1)
    };
    let mut engine = Engine::new(cfg);
    engine.observe_batch(batch); // warm the slab and pools
    best_batch_rate(
        batch.len(),
        (0..tb).map(|_| {
            let start = Instant::now();
            engine.observe_batch(batch);
            start.elapsed()
        }),
    )
}

/// Observe latency percentiles over `batches` steady-state
/// single-shard batches, reported as ns/event. Each sample is a
/// **per-batch mean** (whole-batch wall time / events): per-event
/// timing would cost more than the work being timed, so single-event
/// tail spikes within a batch average out — what the percentiles
/// expose is batch-to-batch jitter, and the JSON labels them as such.
/// Latency — not just throughput — is what "cheap enough for the MPI
/// critical path" means.
fn measure_latency_percentiles(batch: &[Observation], batches: usize) -> (f64, f64) {
    let mut engine = Engine::new(config_with(1));
    engine.observe_batch(batch); // warm
    let mut samples: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            engine.observe_batch(batch);
            start.elapsed().as_secs_f64() / batch.len() as f64 * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let p = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    (p(0.50), p(0.99))
}

/// Small-footprint detector config for the resident-set-size sweep
/// (tens of thousands of streams must fit comfortably in memory).
fn churn_dpd() -> DpdConfig {
    DpdConfig {
        window: 32,
        max_lag: 8,
        ..DpdConfig::default()
    }
}

/// Cost of one `evict_lru` victim (ns) at a given resident-set size.
/// Each round evicts `victims` streams and refills with fresh ranks so
/// the resident count stays ~constant; only the evict calls are timed.
/// With the intrusive LRU this must be independent of `resident` — the
/// old collect-and-sort implementation was O(resident log resident).
fn measure_evict_lru_ns(resident: usize, victims: usize, rounds: usize) -> f64 {
    let cfg = EngineConfig {
        dpd: churn_dpd(),
        parallel_threshold: usize::MAX,
        ..config_with(1)
    };
    let mut engine = Engine::new(cfg);
    let populate: Vec<Observation> = (0..resident as u32)
        .map(|r| Observation::new(StreamKey::new(r, StreamKind::Sender), 1))
        .collect();
    engine.observe_batch(&populate);
    let mut next_rank = resident as u32;
    let mut refill = Vec::with_capacity(victims);
    let mut fastest = Duration::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        let removed = engine.evict_lru(victims);
        fastest = fastest.min(start.elapsed());
        assert_eq!(removed, victims, "resident set large enough to evict from");
        refill.clear();
        refill.extend(
            (0..victims as u32)
                .map(|i| Observation::new(StreamKey::new(next_rank + i, StreamKind::Sender), 1)),
        );
        next_rank += victims as u32;
        engine.observe_batch(&refill);
    }
    fastest.as_secs_f64() * 1e9 / victims as f64
}

/// The federation workload: the synthetic batch re-keyed into
/// `FED_JOBS` interleaved job namespaces.
fn federated_batch() -> Vec<Observation> {
    let base = synthetic_batch();
    let mut out = Vec::with_capacity(base.len() * FED_JOBS as usize);
    for obs in &base {
        for job in 0..FED_JOBS {
            out.push(Observation::new(
                StreamKey::for_job(job, obs.key.rank, obs.key.kind),
                obs.value,
            ));
        }
    }
    out
}

/// Federated ingest rate (events/sec) at `members` member engines,
/// `FED_SHARDS` shards each, over the fixed `FED_JOBS`-job workload.
fn measure_federated(members: usize, batch: &[Observation], tb: usize) -> f64 {
    let fed = FederatedEngine::new(FederationConfig {
        members,
        member: EngineConfig {
            parallel_threshold: 0,
            ..EngineConfig::with_shards(FED_SHARDS)
        },
        adaptive: None,
        rebalance: None,
    });
    let client = fed.client();
    client.observe_batch(batch); // warm: slots, interners, leg buffers
    client.metrics_total(); // barrier: warm-up fully applied
    best_batch_rate(
        batch.len(),
        (0..tb).map(|_| {
            let start = Instant::now();
            client.observe_batch(batch);
            black_box(client.metrics_total().events_ingested);
            start.elapsed()
        }),
    )
}

/// The rebalance workload: a skewed hot/cold job mix — job `j` keeps
/// every `(j + 1)`-th event of the synthetic batch, so job 0 is ~4×
/// hotter than job 3 and hash placement starts imbalanced.
fn skewed_federated_batch() -> Vec<Observation> {
    let base = synthetic_batch();
    let mut out = Vec::new();
    for (i, obs) in base.iter().enumerate() {
        for job in 0..FED_JOBS {
            if i % (job as usize + 1) == 0 {
                out.push(Observation::new(
                    StreamKey::for_job(job, obs.key.rank, obs.key.kind),
                    obs.value,
                ));
            }
        }
    }
    out
}

/// Ingest rate over the skewed hot/cold mix at [`REBALANCE_MEMBERS`]
/// members, rebalancer off or on. The on arm closes a rebalance epoch
/// after every timed batch *inside* the timing window, so its number
/// carries the full cost of metric collection, planning, and any
/// migrations the plan triggers.
fn measure_rebalance(rebalance: bool, batch: &[Observation], tb: usize) -> f64 {
    let fed = FederatedEngine::new(FederationConfig {
        members: REBALANCE_MEMBERS,
        member: EngineConfig {
            parallel_threshold: 0,
            ..EngineConfig::with_shards(FED_SHARDS)
        },
        adaptive: None,
        rebalance: rebalance.then_some(RebalanceConfig {
            headroom: 10,
            max_moves_per_epoch: 2,
            min_dwell_epochs: 1,
        }),
    });
    let client = fed.client();
    client.observe_batch(batch); // warm: slots, interners, leg buffers
    client.metrics_total(); // barrier: warm-up fully applied
    best_batch_rate(
        batch.len(),
        (0..tb).map(|_| {
            let start = Instant::now();
            client.observe_batch(batch);
            if rebalance {
                black_box(fed.rebalance_epoch().moved);
            }
            black_box(client.metrics_total().events_ingested);
            start.elapsed()
        }),
    )
}

fn best_of(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..runs).map(|_| f()).fold(f64::MIN, f64::max)
}

fn bench_observe_batch(c: &mut Criterion) {
    let batch = synthetic_batch();
    let mut g = c.benchmark_group("engine_observe_batch");
    g.throughput(Throughput::Elements(batch.len() as u64));
    for shards in SHARD_COUNTS {
        g.bench_function(format!("scoped/{shards}shard"), |b| {
            let mut engine = Engine::new(config_with(shards));
            engine.observe_batch(&batch);
            b.iter(|| {
                engine.observe_batch(black_box(&batch));
                black_box(engine.metrics_total().events_ingested)
            });
        });
        g.bench_function(format!("persistent/{shards}shard"), |b| {
            let engine = PersistentEngine::new(config_with(shards));
            let client = engine.client();
            client.observe_batch(&batch);
            client.metrics_total();
            b.iter(|| {
                client.observe_batch(black_box(&batch));
                black_box(client.metrics_total().events_ingested)
            });
        });
    }
    g.finish();
}

fn bench_predict_batch(c: &mut Criterion) {
    let batch = synthetic_batch();
    let queries: Vec<Query> = (0..RANKS)
        .flat_map(|r| {
            StreamKind::ALL
                .into_iter()
                .flat_map(move |k| (1..=5).map(move |h| Query::new(StreamKey::new(r, k), h)))
        })
        .collect();
    let mut g = c.benchmark_group("engine_predict_batch");
    g.throughput(Throughput::Elements(queries.len() as u64));
    for shards in [1usize, 8] {
        g.bench_function(format!("scoped/{shards}shard"), |b| {
            let mut engine = Engine::new(config_with(shards));
            for _ in 0..4 {
                engine.observe_batch(&batch);
            }
            let mut out = Vec::new();
            b.iter(|| {
                engine.predict_batch(black_box(&queries), &mut out);
                black_box(out.iter().filter(|p| p.is_some()).count())
            });
        });
        g.bench_function(format!("persistent/{shards}shard"), |b| {
            let engine = PersistentEngine::new(config_with(shards));
            let client = engine.client();
            for _ in 0..4 {
                client.observe_batch(&batch);
            }
            client.metrics_total();
            let mut out = Vec::new();
            b.iter(|| {
                client.predict_batch(black_box(&queries), &mut out);
                black_box(out.iter().filter(|p| p.is_some()).count())
            });
        });
    }
    g.finish();
}

/// Measures the trajectory and (in full mode) writes it to
/// `BENCH_engine.json` at the workspace root. Schema: each `results`
/// entry carries a `"mode": "persistent"|"scoped"` field plus the
/// backpressure knobs (`"queue_cap"`: per-shard lane bound or `null`
/// for unbounded; `"backpressure"`: full-lane policy label, `null` for
/// the scoped mode, which has no queues); `persistent_vs_scoped`
/// records the per-shard-count throughput ratio (≥ 1.0 means the
/// persistent workers win); `bounded_saturation` records the
/// `Block`-mode saturation throughput per lane capacity at
/// `BOUNDED_SHARDS` shards; `federation` records the multi-engine
/// ingest trajectory — events/sec per member count over a fixed
/// `FED_JOBS`-job interleaved workload (`FED_SHARDS` shards per
/// member); `rebalance` records the load-aware rebalancer A/B — the
/// fixed skewed hot/cold mix ingested with the rebalancer off and on
/// (epoch closed every batch, so the on arm bounds the cost from
/// above); `churn` records the eviction-heavy numbers (TTL-churn
/// ingest, per-event latency percentiles, `evict_lru` ns/victim at two
/// resident-set sizes — flat means O(victims), not O(resident));
/// `telemetry_overhead` records the single-shard telemetry off/on A/B
/// (both modes, interleaved arms; the ≤3% ingest-overhead budget the
/// telemetry layer is held to); `ensemble_overhead` records the same
/// A/B shape for the DPD-only default vs the standard
/// champion/challenger roster — the honest price of online model
/// selection, not a near-zero budget; `baseline_pr4` embeds the pre-slab PR 4
/// numbers and `speedup_vs_baseline_pr4` the single-shard before/after
/// ratios.
fn write_bench_json(p: &Params) {
    let batch = synthetic_batch();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries: Vec<String> = Vec::new();
    let mut ratios: Vec<String> = Vec::new();
    let mut persistent_rates = Vec::new();
    let mut scoped_1shard = 0.0f64;
    for shards in SHARD_COUNTS {
        let scoped = best_of(p.runs, || measure_scoped(shards, &batch, p.timed_batches));
        let persistent = best_of(p.runs, || {
            measure_persistent(shards, &batch, p.timed_batches)
        });
        if shards == 1 {
            scoped_1shard = scoped;
        }
        println!(
            "engine ingest {shards:>2} shard(s): scoped {scoped:>10.0} ev/s, \
             persistent {persistent:>10.0} ev/s ({:+.1}%)",
            100.0 * (persistent / scoped - 1.0)
        );
        entries.push(format!(
            "    {{\"mode\": \"scoped\", \"shards\": {shards}, \"queue_cap\": null, \
             \"backpressure\": null, \"events_per_sec\": {scoped:.0}}}"
        ));
        entries.push(format!(
            "    {{\"mode\": \"persistent\", \"shards\": {shards}, \"queue_cap\": null, \
             \"backpressure\": \"block\", \"events_per_sec\": {persistent:.0}}}"
        ));
        ratios.push(format!("    \"{shards}\": {:.3}", persistent / scoped));
        persistent_rates.push(persistent);
    }
    let policy = BackpressurePolicy::Block.label();
    let mut saturation: Vec<String> = Vec::new();
    for cap in QUEUE_CAPS {
        let rate = best_of(p.runs, || {
            measure_bounded(BOUNDED_SHARDS, cap, &batch, p.timed_batches)
        });
        println!(
            "engine ingest {BOUNDED_SHARDS:>2} shard(s), lane cap {cap:>3} ({policy}): \
             {rate:>10.0} ev/s"
        );
        entries.push(format!(
            "    {{\"mode\": \"persistent\", \"shards\": {BOUNDED_SHARDS}, \"queue_cap\": {cap}, \
             \"backpressure\": \"{policy}\", \"events_per_sec\": {rate:.0}}}"
        ));
        saturation.push(format!("    \"{cap}\": {rate:.0}"));
    }
    let fed_batch = federated_batch();
    let mut federation: Vec<String> = Vec::new();
    for members in MEMBER_COUNTS {
        let rate = best_of(p.runs, || {
            measure_federated(members, &fed_batch, p.timed_batches)
        });
        println!(
            "engine ingest federation {members} member(s) x {FED_SHARDS} shard(s), \
             {FED_JOBS} jobs: {rate:>10.0} ev/s"
        );
        federation.push(format!("    \"{members}\": {rate:.0}"));
    }

    // Rebalance A/B: the fixed skewed hot/cold mix with the load-aware
    // rebalancer off and on, interleaved arms like the other A/Bs. The
    // on arm pays for an epoch close (metrics broadcast + plan + any
    // migrations) every batch — the worst-case cadence, far hotter than
    // production epochs.
    let skewed = skewed_federated_batch();
    let mut rb = (0.0f64, 0.0f64); // (off, on)
    for _ in 0..p.runs {
        rb.0 = rb.0.max(measure_rebalance(false, &skewed, p.timed_batches));
        rb.1 = rb.1.max(measure_rebalance(true, &skewed, p.timed_batches));
    }
    println!(
        "engine ingest rebalance A/B {REBALANCE_MEMBERS} member(s) x {FED_SHARDS} shard(s), \
         skewed {FED_JOBS} jobs: off {:>10.0} ev/s, on {:>10.0} ev/s ({:+.2}% overhead)",
        rb.0,
        rb.1,
        100.0 * (rb.0 / rb.1.max(1e-12) - 1.0)
    );

    // Telemetry A/B: the identical single-shard workload with the
    // telemetry layer off and on, both modes. One shard keeps the
    // per-event instrumentation cost undiluted by parallelism, so the
    // measured overhead is the worst case. The interleaved off/on
    // pairing inside each best-of run keeps container drift from
    // biasing one arm.
    let mut tel = [(0.0f64, 0.0f64); 2]; // [scoped, persistent] (off, on)
    for _ in 0..p.runs {
        let on_cfg = || config_with(1).with_telemetry(TelemetryConfig::enabled());
        let samples = [
            (
                measure_scoped(1, &batch, p.timed_batches),
                measure_scoped_cfg(on_cfg(), &batch, p.timed_batches),
            ),
            (
                measure_persistent(1, &batch, p.timed_batches),
                measure_persistent_cfg(on_cfg(), &batch, p.timed_batches),
            ),
        ];
        for (slot, (off, on)) in tel.iter_mut().zip(samples) {
            slot.0 = slot.0.max(off);
            slot.1 = slot.1.max(on);
        }
    }
    let overhead_pct = |(off, on): (f64, f64)| 100.0 * (off / on.max(1e-12) - 1.0);
    for (label, pair) in ["scoped", "persistent"].into_iter().zip(tel) {
        println!(
            "engine ingest  1 shard(s), telemetry A/B ({label}): \
             off {:>10.0} ev/s, on {:>10.0} ev/s ({:+.2}% overhead)",
            pair.0,
            pair.1,
            overhead_pct(pair)
        );
    }

    // Ensemble A/B: the identical single-shard workload with the
    // DPD-only default vs the standard champion/challenger roster
    // (last-value, stride, markov-1). Unlike telemetry, the ensemble
    // is real extra work — every challenger observes and scores each
    // event — so this records the *price* of model selection rather
    // than holding it to a near-zero budget. Same interleaved arms and
    // min estimator as the telemetry A/B.
    let mut ens = [(0.0f64, 0.0f64); 2]; // [scoped, persistent] (off, on)
    for _ in 0..p.runs {
        let on_cfg = || EngineConfig {
            ensemble: EnsembleConfig::standard(),
            ..config_with(1)
        };
        let samples = [
            (
                measure_scoped(1, &batch, p.timed_batches),
                measure_scoped_cfg(on_cfg(), &batch, p.timed_batches),
            ),
            (
                measure_persistent(1, &batch, p.timed_batches),
                measure_persistent_cfg(on_cfg(), &batch, p.timed_batches),
            ),
        ];
        for (slot, (off, on)) in ens.iter_mut().zip(samples) {
            slot.0 = slot.0.max(off);
            slot.1 = slot.1.max(on);
        }
    }
    for (label, pair) in ["scoped", "persistent"].into_iter().zip(ens) {
        println!(
            "engine ingest  1 shard(s), ensemble A/B ({label}): \
             dpd-only {:>10.0} ev/s, standard roster {:>10.0} ev/s ({:+.2}% overhead)",
            pair.0,
            pair.1,
            overhead_pct(pair)
        );
    }

    // WAL A/B: the identical single-shard workload with the
    // observation log off and on, one arm per flush policy. Whole
    // windows closed by a sync_wal barrier (see `measure_wal`), arms
    // interleaved within each best-of run. every_batch is the honest
    // price of per-batch durability; every_n(64) and on_rotate show
    // what relaxing the fsync cadence buys back.
    const WAL_ARMS: [(&str, Option<FlushPolicy>); 4] = [
        ("off", None),
        ("every_batch", Some(FlushPolicy::EveryBatch)),
        ("every_n_64", Some(FlushPolicy::EveryN(64))),
        ("on_rotate", Some(FlushPolicy::OnRotate)),
    ];
    let mut wal = [0.0f64; WAL_ARMS.len()];
    for _ in 0..p.runs {
        for (slot, &(_, flush)) in wal.iter_mut().zip(WAL_ARMS.iter()) {
            *slot = slot.max(measure_wal(flush, &batch, p.timed_batches));
        }
    }
    for (&(label, _), &rate) in WAL_ARMS.iter().zip(wal.iter()) {
        println!(
            "engine ingest  1 shard(s), wal A/B ({label}): {rate:>10.0} ev/s \
             ({:+.2}% overhead vs off)",
            100.0 * (wal[0] / rate.max(1e-12) - 1.0)
        );
    }

    // Churn section: eviction-heavy ingest, latency percentiles, and
    // the evict_lru cost sweep over resident-set sizes.
    let churn_rate = best_of(p.runs, || measure_ttl_churn(&batch, p.timed_batches));
    println!("engine ingest  1 shard(s), churn ttl: {churn_rate:>10.0} ev/s");
    let (p50, p99) = measure_latency_percentiles(&batch, p.latency_batches);
    println!("engine observe latency per event: p50 {p50:.0} ns, p99 {p99:.0} ns");
    const LRU_VICTIMS: usize = 16;
    let mut evict_entries: Vec<String> = Vec::new();
    let mut evict_costs: Vec<f64> = Vec::new();
    for resident in p.resident_sizes {
        let ns = best_of(p.runs, || {
            measure_evict_lru_ns(resident, LRU_VICTIMS, p.evict_rounds)
        });
        println!("engine evict_lru({LRU_VICTIMS}) at {resident:>6} resident: {ns:>8.0} ns/victim");
        evict_entries.push(format!("      \"{resident}\": {ns:.0}"));
        evict_costs.push(ns);
    }

    if !p.write_json {
        println!("--smoke: all measurement paths exercised, BENCH_engine.json left untouched");
        return;
    }

    let single = persistent_rates[0];
    let best_multi = persistent_rates[1..]
        .iter()
        .copied()
        .fold(f64::MIN, f64::max);
    // Below 4 cores the multi-shard "speedup" is mostly scheduling and
    // cache-locality noise, not scaling evidence — say so in the
    // artifact rather than leaving a misleading baseline.
    let note = if cores < 4 {
        ",\n  \"note\": \"measured on fewer than 4 cores; \
         multi_shard_speedup is not scaling evidence, re-baseline on >=4 cores\""
    } else {
        ""
    };
    let json = format!(
        "{{\n  \"bench\": \"engine_observe_batch\",\n  \"ranks\": {RANKS},\n  \
         \"events_per_batch\": {},\n  \"timed_batches\": {},\n  \
         \"runs_best_of\": {},\n  \"cores\": {cores},\n  \
         \"method\": \"events_per_sec = batch events / fastest completed batch \
         (incl. a metrics barrier for channel modes) over runs_best_of x timed_batches \
         samples; the min estimator is robust to the shared container's scheduler \
         interference, which only ever adds time\",\n  \"results\": [\n{}\n  ],\n  \
         \"persistent_vs_scoped\": {{\n{}\n  }},\n  \
         \"bounded_saturation\": {{\n{}\n  }},\n  \
         \"federation\": {{\n    \"jobs\": {FED_JOBS},\n    \"shards_per_member\": {FED_SHARDS},\n    \
         \"events_per_sec\": {{\n{}\n    }}\n  }},\n  \
         \"rebalance\": {{\n    \"members\": {REBALANCE_MEMBERS},\n    \
         \"shards_per_member\": {FED_SHARDS},\n    \"jobs\": {FED_JOBS},\n    \
         \"workload\": \"skewed hot/cold mix: job j keeps every (j+1)-th event, so job 0 \
         is ~4x hotter than job 3 and hash placement starts imbalanced\",\n    \
         \"events_per_sec\": {{\"off\": {:.0}, \"on\": {:.0}}},\n    \
         \"overhead_pct\": {:.2},\n    \
         \"method\": \"same min estimator and interleaved off/on arms as the other A/Bs; \
         the on arm closes a rebalance epoch (metrics broadcast + pure plan + any quiesce \
         and migrate legs) after every timed batch inside the timing window — a per-batch \
         cadence far hotter than production epochs, so this bounds the steady-state cost \
         from above\"\n  }},\n  \
         \"churn\": {{\n    \"ttl_churn_events_per_sec\": {churn_rate:.0},\n    \
         \"observe_latency_ns_per_event\": {{\"p50\": {p50:.0}, \"p99\": {p99:.0}, \
         \"batches\": {}, \"granularity\": \"percentiles of per-batch means \
         (whole-batch wall time / events) — batch-to-batch jitter, not \
         single-event tails\"}},\n    \
         \"evict_lru_ns_per_victim\": {{\n      \"victims\": {LRU_VICTIMS},\n      \
         \"rounds\": {},\n      \"by_resident_streams\": {{\n{}\n      }},\n      \
         \"cost_ratio_large_vs_small\": {:.3},\n      \
         \"note\": \"per-victim cost must stay ~flat as residents grow: victims come \
         from a bounded LRU-head window, never a full collect-and-sort (which scaled \
         with the resident set); residual growth is key-map cache pressure\"\n    \
         }}\n  }},\n  \
         \"telemetry_overhead\": {{\n    \"shards\": 1,\n    \
         \"events_per_sec\": {{\n      \
         \"scoped\": {{\"off\": {:.0}, \"on\": {:.0}}},\n      \
         \"persistent\": {{\"off\": {:.0}, \"on\": {:.0}}}\n    }},\n    \
         \"overhead_pct\": {{\"scoped\": {:.2}, \"persistent\": {:.2}}},\n    \
         \"budget_pct\": 3.0,\n    \
         \"method\": \"same fixed workload and min estimator as results, 1 shard \
         (per-event instrumentation cost undiluted by parallelism); off/on arms \
         interleaved within each best-of run so container drift cannot bias one arm; \
         overhead_pct = off_rate/on_rate - 1; the instrumented hot path costs one \
         clock pair and one bucketed record_n per shard-batch (per-batch means, \
         never per-event clock reads) and must stay within budget_pct\"\n  }},\n  \
         \"ensemble_overhead\": {{\n    \"shards\": 1,\n    \
         \"roster\": [\"dpd\", \"last-value\", \"stride\", \"markov1\"],\n    \
         \"events_per_sec\": {{\n      \
         \"scoped\": {{\"dpd_only\": {:.0}, \"standard_roster\": {:.0}}},\n      \
         \"persistent\": {{\"dpd_only\": {:.0}, \"standard_roster\": {:.0}}}\n    }},\n    \
         \"overhead_pct\": {{\"scoped\": {:.2}, \"persistent\": {:.2}}},\n    \
         \"method\": \"same fixed workload, interleaved arms and min estimator as \
         telemetry_overhead; the on arm runs EnsembleConfig::standard() (3 \
         always-predicting challengers observing and scoring every event on top of \
         the DPD bank), so overhead_pct is the honest price of online model \
         selection, not a near-zero instrumentation budget\"\n  }},\n  \
         \"wal_overhead\": {{\n    \"shards\": 1,\n    \"cores\": {cores},\n    \
         \"events_per_sec\": {{\"off\": {:.0}, \"every_batch\": {:.0}, \
         \"every_n_64\": {:.0}, \"on_rotate\": {:.0}}},\n    \
         \"overhead_pct\": {{\"every_batch\": {:.2}, \"every_n_64\": {:.2}, \
         \"on_rotate\": {:.2}}},\n    \
         \"method\": \"same fixed workload as results, 1 shard, observation log off \
         vs on per flush policy; arms interleaved within each best-of run and each \
         durable arm logs into a fresh directory; whole-window timing (all timed \
         batches + a closing sync_wal durability barrier, best window across runs) \
         rather than the per-batch min estimator, because the log is written by a \
         dedicated thread and a per-batch minimum would let the fsync cost escape \
         the timed slice; overhead_pct = off_rate/on_rate - 1\"\n  }},\n  \
         \"baseline_pr4\": {BASELINE_PR4},\n  \
         \"speedup_vs_baseline_pr4\": {{\n    \"scoped_1shard\": {:.3},\n    \
         \"persistent_1shard\": {:.3}\n  }},\n  \
         \"best_multi_shard_speedup\": {:.3}{note}\n}}\n",
        batch.len(),
        p.timed_batches,
        p.runs,
        entries.join(",\n"),
        ratios.join(",\n"),
        saturation.join(",\n"),
        federation.join(",\n"),
        rb.0,
        rb.1,
        100.0 * (rb.0 / rb.1.max(1e-12) - 1.0),
        p.latency_batches,
        p.evict_rounds,
        evict_entries.join(",\n"),
        evict_costs[1] / evict_costs[0].max(1e-12),
        tel[0].0,
        tel[0].1,
        tel[1].0,
        tel[1].1,
        overhead_pct(tel[0]),
        overhead_pct(tel[1]),
        ens[0].0,
        ens[0].1,
        ens[1].0,
        ens[1].1,
        overhead_pct(ens[0]),
        overhead_pct(ens[1]),
        wal[0],
        wal[1],
        wal[2],
        wal[3],
        overhead_pct((wal[0], wal[1])),
        overhead_pct((wal[0], wal[2])),
        overhead_pct((wal[0], wal[3])),
        scoped_1shard / BASELINE_PR4_SCOPED_1SHARD,
        single / BASELINE_PR4_PERSISTENT_1SHARD,
        best_multi / single.max(1e-12),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_observe_batch, bench_predict_batch);

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        // CI mode: exercise every bench path quickly (criterion groups
        // with tiny sampling + all JSON measurements) without
        // publishing noisy numbers over the committed trajectory.
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(60));
        bench_observe_batch(&mut c);
        bench_predict_batch(&mut c);
        write_bench_json(&Params::smoke());
    } else {
        benches();
        write_bench_json(&Params::full());
    }
}
