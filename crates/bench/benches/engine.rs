//! Engine ingest/serve throughput: the serving-layer numbers the
//! ROADMAP's production-scale goal regresses against.
//!
//! Two outputs:
//!
//! * criterion-style stdout lines for `observe_batch` (per execution
//!   mode and shard count) and `predict_batch`;
//! * `BENCH_engine.json` at the workspace root — events/sec per
//!   (mode, shard count) measured directly with `Instant`, so later
//!   PRs have a fixed perf trajectory file to diff (in the
//!   reproducible-benchmarking spirit of Hunold & Carpen-Amarie:
//!   fixed workload, fixed seeds, machine parallelism recorded
//!   alongside the numbers, best-of-`RUNS` to damp scheduler noise).
//!
//! The comparison that matters for the persistent-worker design: at
//! every shard count, `"mode": "persistent"` (long-lived channel-fed
//! workers) must not lose to `"mode": "scoped"` (threads spawned per
//! batch) — the JSON records both so the regression is visible.

use criterion::{black_box, criterion_group, Criterion, Throughput};
use mpp_engine::{
    BackpressurePolicy, Engine, EngineConfig, FederatedEngine, FederationConfig, Observation,
    PersistentEngine, Query, StreamKey, StreamKind,
};
use std::time::Instant;

/// Ranks in the synthetic workload.
const RANKS: u32 = 192;
/// Events per rank per batch (spread over sender/size/tag streams).
const EVENTS_PER_RANK: usize = 96;
/// Shard counts measured for the JSON trajectory.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Observe-lane capacities measured for the bounded-ingest saturation
/// trajectory (at `BOUNDED_SHARDS` shards, `Block` policy).
const QUEUE_CAPS: [usize; 3] = [1, 8, 64];
/// Shard count used for the bounded-lane measurements.
const BOUNDED_SHARDS: usize = 4;
/// Member counts measured for the federation trajectory.
const MEMBER_COUNTS: [usize; 3] = [1, 2, 4];
/// Interleaved job copies in the federation workload (fixed across
/// member counts so the event stream is identical and only the member
/// count varies).
const FED_JOBS: u32 = 4;
/// Shards per federation member (kept small so total worker threads
/// stay proportional to the member count).
const FED_SHARDS: usize = 2;
/// Timed batches per measurement run.
const TIMED_BATCHES: usize = 6;
/// Measurement runs per (mode, shard count); best-of damps noise.
const RUNS: usize = 3;

/// Deterministic multi-rank workload: every rank carries three periodic
/// attribute streams with rank-dependent periods, interleaved
/// round-robin across ranks so batch partitioning is exercised.
fn synthetic_batch() -> Vec<Observation> {
    let mut out = Vec::with_capacity(RANKS as usize * EVENTS_PER_RANK);
    for step in 0..EVENTS_PER_RANK / 3 {
        for rank in 0..RANKS {
            let sp = 2 + (rank as usize % 7);
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Sender),
                ((step + rank as usize) % sp) as u64,
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Size),
                [512u64, 4096, 1 << 20][(step + rank as usize) % 3],
            ));
            out.push(Observation::new(
                StreamKey::new(rank, StreamKind::Tag),
                (step % 2) as u64,
            ));
        }
    }
    out
}

fn config_with(shards: usize) -> EngineConfig {
    EngineConfig {
        // Threshold 0: measure the true parallel path even for the
        // warm-up batch.
        parallel_threshold: 0,
        ..EngineConfig::with_shards(shards)
    }
}

/// Directly measured scoped-mode ingest rate (events/sec).
fn measure_scoped(shards: usize, batch: &[Observation]) -> f64 {
    let mut engine = Engine::new(config_with(shards));
    engine.observe_batch(batch); // warm: allocate slots, intern symbols
    let start = Instant::now();
    for _ in 0..TIMED_BATCHES {
        engine.observe_batch(batch);
    }
    let secs = start.elapsed().as_secs_f64();
    (TIMED_BATCHES * batch.len()) as f64 / secs.max(1e-12)
}

/// Directly measured persistent-mode ingest rate (events/sec). The
/// closing metrics round-trip queues behind every batch, so the timed
/// window covers completed work, not just enqueued work.
fn measure_persistent(shards: usize, batch: &[Observation]) -> f64 {
    measure_persistent_cfg(config_with(shards), batch)
}

/// Persistent-mode ingest rate with bounded observe lanes (`Block`
/// policy): the saturation throughput the backpressure subsystem
/// sustains at a given per-shard capacity.
fn measure_bounded(shards: usize, cap: usize, batch: &[Observation]) -> f64 {
    measure_persistent_cfg(config_with(shards).with_queue_cap(cap), batch)
}

fn measure_persistent_cfg(cfg: EngineConfig, batch: &[Observation]) -> f64 {
    let engine = PersistentEngine::new(cfg);
    let client = engine.client();
    client.observe_batch(batch); // warm: slots, interners, leg buffers
    client.metrics_total(); // barrier: warm-up fully applied
    let start = Instant::now();
    for _ in 0..TIMED_BATCHES {
        client.observe_batch(batch);
    }
    black_box(client.metrics_total().events_ingested);
    let secs = start.elapsed().as_secs_f64();
    (TIMED_BATCHES * batch.len()) as f64 / secs.max(1e-12)
}

/// The federation workload: the synthetic batch re-keyed into
/// `FED_JOBS` interleaved job namespaces.
fn federated_batch() -> Vec<Observation> {
    let base = synthetic_batch();
    let mut out = Vec::with_capacity(base.len() * FED_JOBS as usize);
    for obs in &base {
        for job in 0..FED_JOBS {
            out.push(Observation::new(
                StreamKey::for_job(job, obs.key.rank, obs.key.kind),
                obs.value,
            ));
        }
    }
    out
}

/// Federated ingest rate (events/sec) at `members` member engines,
/// `FED_SHARDS` shards each, over the fixed `FED_JOBS`-job workload.
fn measure_federated(members: usize, batch: &[Observation]) -> f64 {
    let fed = FederatedEngine::new(FederationConfig {
        members,
        member: EngineConfig {
            parallel_threshold: 0,
            ..EngineConfig::with_shards(FED_SHARDS)
        },
        adaptive: None,
    });
    let client = fed.client();
    client.observe_batch(batch); // warm: slots, interners, leg buffers
    client.metrics_total(); // barrier: warm-up fully applied
    let start = Instant::now();
    for _ in 0..TIMED_BATCHES {
        client.observe_batch(batch);
    }
    black_box(client.metrics_total().events_ingested);
    let secs = start.elapsed().as_secs_f64();
    (TIMED_BATCHES * batch.len()) as f64 / secs.max(1e-12)
}

fn best_of(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..runs).map(|_| f()).fold(f64::MIN, f64::max)
}

fn bench_observe_batch(c: &mut Criterion) {
    let batch = synthetic_batch();
    let mut g = c.benchmark_group("engine_observe_batch");
    g.throughput(Throughput::Elements(batch.len() as u64));
    for shards in SHARD_COUNTS {
        g.bench_function(format!("scoped/{shards}shard"), |b| {
            let mut engine = Engine::new(config_with(shards));
            engine.observe_batch(&batch);
            b.iter(|| {
                engine.observe_batch(black_box(&batch));
                black_box(engine.metrics_total().events_ingested)
            });
        });
        g.bench_function(format!("persistent/{shards}shard"), |b| {
            let engine = PersistentEngine::new(config_with(shards));
            let client = engine.client();
            client.observe_batch(&batch);
            client.metrics_total();
            b.iter(|| {
                client.observe_batch(black_box(&batch));
                black_box(client.metrics_total().events_ingested)
            });
        });
    }
    g.finish();
}

fn bench_predict_batch(c: &mut Criterion) {
    let batch = synthetic_batch();
    let queries: Vec<Query> = (0..RANKS)
        .flat_map(|r| {
            StreamKind::ALL
                .into_iter()
                .flat_map(move |k| (1..=5).map(move |h| Query::new(StreamKey::new(r, k), h)))
        })
        .collect();
    let mut g = c.benchmark_group("engine_predict_batch");
    g.throughput(Throughput::Elements(queries.len() as u64));
    for shards in [1usize, 8] {
        g.bench_function(format!("scoped/{shards}shard"), |b| {
            let mut engine = Engine::new(config_with(shards));
            for _ in 0..4 {
                engine.observe_batch(&batch);
            }
            let mut out = Vec::new();
            b.iter(|| {
                engine.predict_batch(black_box(&queries), &mut out);
                black_box(out.iter().filter(|p| p.is_some()).count())
            });
        });
        g.bench_function(format!("persistent/{shards}shard"), |b| {
            let engine = PersistentEngine::new(config_with(shards));
            let client = engine.client();
            for _ in 0..4 {
                client.observe_batch(&batch);
            }
            client.metrics_total();
            let mut out = Vec::new();
            b.iter(|| {
                client.predict_batch(black_box(&queries), &mut out);
                black_box(out.iter().filter(|p| p.is_some()).count())
            });
        });
    }
    g.finish();
}

/// Writes the events/sec trajectory to `BENCH_engine.json` at the
/// workspace root. Schema: each `results` entry carries a
/// `"mode": "persistent"|"scoped"` field plus the backpressure knobs
/// (`"queue_cap"`: per-shard lane bound or `null` for unbounded;
/// `"backpressure"`: full-lane policy label, `null` for the scoped
/// mode, which has no queues); `persistent_vs_scoped` records the
/// per-shard-count throughput ratio (≥ 1.0 means the persistent
/// workers win); `bounded_saturation` records the `Block`-mode
/// saturation throughput per lane capacity at `BOUNDED_SHARDS` shards;
/// `federation` records the multi-engine ingest trajectory — events/sec
/// per member count over a fixed `FED_JOBS`-job interleaved workload
/// (`FED_SHARDS` shards per member).
fn write_bench_json() {
    let batch = synthetic_batch();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries: Vec<String> = Vec::new();
    let mut ratios: Vec<String> = Vec::new();
    let mut persistent_rates = Vec::new();
    for shards in SHARD_COUNTS {
        let scoped = best_of(RUNS, || measure_scoped(shards, &batch));
        let persistent = best_of(RUNS, || measure_persistent(shards, &batch));
        println!(
            "engine ingest {shards:>2} shard(s): scoped {scoped:>10.0} ev/s, \
             persistent {persistent:>10.0} ev/s ({:+.1}%)",
            100.0 * (persistent / scoped - 1.0)
        );
        entries.push(format!(
            "    {{\"mode\": \"scoped\", \"shards\": {shards}, \"queue_cap\": null, \
             \"backpressure\": null, \"events_per_sec\": {scoped:.0}}}"
        ));
        entries.push(format!(
            "    {{\"mode\": \"persistent\", \"shards\": {shards}, \"queue_cap\": null, \
             \"backpressure\": \"block\", \"events_per_sec\": {persistent:.0}}}"
        ));
        ratios.push(format!("    \"{shards}\": {:.3}", persistent / scoped));
        persistent_rates.push(persistent);
    }
    let policy = BackpressurePolicy::Block.label();
    let mut saturation: Vec<String> = Vec::new();
    for cap in QUEUE_CAPS {
        let rate = best_of(RUNS, || measure_bounded(BOUNDED_SHARDS, cap, &batch));
        println!(
            "engine ingest {BOUNDED_SHARDS:>2} shard(s), lane cap {cap:>3} ({policy}): \
             {rate:>10.0} ev/s"
        );
        entries.push(format!(
            "    {{\"mode\": \"persistent\", \"shards\": {BOUNDED_SHARDS}, \"queue_cap\": {cap}, \
             \"backpressure\": \"{policy}\", \"events_per_sec\": {rate:.0}}}"
        ));
        saturation.push(format!("    \"{cap}\": {rate:.0}"));
    }
    let fed_batch = federated_batch();
    let mut federation: Vec<String> = Vec::new();
    for members in MEMBER_COUNTS {
        let rate = best_of(RUNS, || measure_federated(members, &fed_batch));
        println!(
            "engine ingest federation {members} member(s) x {FED_SHARDS} shard(s), \
             {FED_JOBS} jobs: {rate:>10.0} ev/s"
        );
        federation.push(format!("    \"{members}\": {rate:.0}"));
    }
    let single = persistent_rates[0];
    let best_multi = persistent_rates[1..]
        .iter()
        .copied()
        .fold(f64::MIN, f64::max);
    // Below 4 cores the multi-shard "speedup" is mostly scheduling and
    // cache-locality noise, not scaling evidence — say so in the
    // artifact rather than leaving a misleading baseline.
    let note = if cores < 4 {
        ",\n  \"note\": \"measured on fewer than 4 cores; \
         multi_shard_speedup is not scaling evidence, re-baseline on >=4 cores\""
    } else {
        ""
    };
    let json = format!(
        "{{\n  \"bench\": \"engine_observe_batch\",\n  \"ranks\": {RANKS},\n  \
         \"events_per_batch\": {},\n  \"timed_batches\": {TIMED_BATCHES},\n  \
         \"runs_best_of\": {RUNS},\n  \"cores\": {cores},\n  \"results\": [\n{}\n  ],\n  \
         \"persistent_vs_scoped\": {{\n{}\n  }},\n  \
         \"bounded_saturation\": {{\n{}\n  }},\n  \
         \"federation\": {{\n    \"jobs\": {FED_JOBS},\n    \"shards_per_member\": {FED_SHARDS},\n    \
         \"events_per_sec\": {{\n{}\n    }}\n  }},\n  \
         \"best_multi_shard_speedup\": {:.3}{note}\n}}\n",
        batch.len(),
        entries.join(",\n"),
        ratios.join(",\n"),
        saturation.join(",\n"),
        federation.join(",\n"),
        best_multi / single.max(1e-12),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_observe_batch, bench_predict_batch);

fn main() {
    benches();
    write_bench_json();
}
