//! Throughput comparison of the whole predictor roster (§4.2 / §6: DPD
//! vs next-value heuristics vs Markov models) on a BT-like periodic
//! stream with mild physical noise.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpp_core::dpd::DpdConfig;
use mpp_core::predictors::PredictorKind;
use mpp_nasbench::synthetic::periodic_with_swaps;

fn bench_roster(c: &mut Criterion) {
    let pattern = [5u64, 4, 0, 6, 2, 7, 5, 5, 4, 4, 0, 0, 6, 6, 2, 2, 7, 7];
    let stream = periodic_with_swaps(&pattern, 10_000, 0.05, 7).values;
    let cfg = DpdConfig {
        window: 512,
        max_lag: 256,
        tolerance: 0.2,
        ..DpdConfig::default()
    };

    let mut g = c.benchmark_group("predictor_observe_predict");
    g.throughput(Throughput::Elements(stream.len() as u64));
    for kind in PredictorKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut p = kind.build(&cfg);
                    let mut acc = 0u64;
                    for &v in &stream {
                        p.observe(v);
                        if let Some(x) = p.predict(1) {
                            acc = acc.wrapping_add(x);
                        }
                    }
                    black_box(acc)
                });
            },
        );
    }
    g.finish();
}

/// Short sampling profile so the full suite stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_roster);
criterion_main!(benches);
