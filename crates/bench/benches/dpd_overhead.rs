//! §4.2 claims the predictor's overhead is small because it is
//! implemented with circular lists. This bench measures the
//! per-observation cost of the incremental detector as the lag range
//! grows, and the cost of producing +1..+5 predictions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpp_core::dpd::{DpdConfig, DpdPredictor, PeriodicityDetector};
use mpp_core::predictors::Predictor;

fn stream(len: usize) -> Vec<u64> {
    // BT.9-like period-18 sender pattern.
    let pattern = [5u64, 4, 0, 6, 2, 7, 5, 5, 4, 4, 0, 0, 6, 6, 2, 2, 7, 7];
    (0..len).map(|i| pattern[i % pattern.len()]).collect()
}

fn bench_observe(c: &mut Criterion) {
    let data = stream(10_000);
    let mut g = c.benchmark_group("dpd_observe");
    g.throughput(Throughput::Elements(data.len() as u64));
    for max_lag in [32usize, 128, 256] {
        g.bench_with_input(
            BenchmarkId::from_parameter(max_lag),
            &max_lag,
            |b, &max_lag| {
                let cfg = DpdConfig {
                    window: max_lag * 2,
                    max_lag,
                    ..DpdConfig::default()
                };
                b.iter(|| {
                    let mut det = PeriodicityDetector::new(cfg.clone());
                    for &v in &data {
                        det.observe(black_box(v));
                    }
                    black_box(det.period())
                });
            },
        );
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = stream(5_000);
    let mut p = DpdPredictor::new(DpdConfig {
        window: 512,
        max_lag: 256,
        ..DpdConfig::default()
    });
    for &v in &data {
        p.observe(v);
    }
    assert!(p.period().is_some());
    c.bench_function("dpd_predict_next5", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for h in 1..=5 {
                if let Some(v) = p.predict(black_box(h)) {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        });
    });
}

fn bench_observe_predict_cycle(c: &mut Criterion) {
    // The full online loop a runtime would run per delivered message.
    let data = stream(10_000);
    let mut g = c.benchmark_group("dpd_online_cycle");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("observe_plus_predict5", |b| {
        b.iter(|| {
            let mut p = DpdPredictor::new(DpdConfig {
                window: 512,
                max_lag: 256,
                ..DpdConfig::default()
            });
            let mut acc = 0u64;
            for &v in &data {
                p.observe(v);
                for h in 1..=5 {
                    if let Some(x) = p.predict(h) {
                        acc = acc.wrapping_add(x);
                    }
                }
            }
            black_box(acc)
        });
    });
    g.finish();
}

/// Short sampling profile so the full suite stays minutes, not hours.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_observe, bench_predict, bench_observe_predict_cycle);
criterion_main!(benches);
