//! Reference values transcribed from the paper, for side-by-side
//! comparison in reports and for integration tests.

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable1Row {
    /// Configuration label, e.g. `bt.9`.
    pub label: &'static str,
    /// Point-to-point messages received by the traced process.
    pub p2p_msgs: usize,
    /// Collective messages (the paper's counting; see EXPERIMENTS.md for
    /// the self-copy / algorithm caveats).
    pub coll_msgs: usize,
    /// Frequently-appearing distinct message sizes.
    pub msg_sizes: usize,
    /// Frequently-appearing distinct senders.
    pub senders: usize,
}

/// Table 1 of the paper, verbatim.
pub const PAPER_TABLE1: &[PaperTable1Row] = &[
    PaperTable1Row {
        label: "bt.4",
        p2p_msgs: 2416,
        coll_msgs: 9,
        msg_sizes: 3,
        senders: 3,
    },
    PaperTable1Row {
        label: "bt.9",
        p2p_msgs: 3651,
        coll_msgs: 9,
        msg_sizes: 3,
        senders: 7,
    },
    PaperTable1Row {
        label: "bt.16",
        p2p_msgs: 4826,
        coll_msgs: 9,
        msg_sizes: 3,
        senders: 7,
    },
    PaperTable1Row {
        label: "bt.25",
        p2p_msgs: 6030,
        coll_msgs: 9,
        msg_sizes: 3,
        senders: 7,
    },
    PaperTable1Row {
        label: "cg.4",
        p2p_msgs: 1679,
        coll_msgs: 0,
        msg_sizes: 2,
        senders: 2,
    },
    PaperTable1Row {
        label: "cg.8",
        p2p_msgs: 2942,
        coll_msgs: 0,
        msg_sizes: 2,
        senders: 2,
    },
    PaperTable1Row {
        label: "cg.16",
        p2p_msgs: 2942,
        coll_msgs: 0,
        msg_sizes: 2,
        senders: 2,
    },
    PaperTable1Row {
        label: "cg.32",
        p2p_msgs: 4204,
        coll_msgs: 0,
        msg_sizes: 2,
        senders: 2,
    },
    PaperTable1Row {
        label: "lu.4",
        p2p_msgs: 31472,
        coll_msgs: 18,
        msg_sizes: 2,
        senders: 2,
    },
    PaperTable1Row {
        label: "lu.8",
        p2p_msgs: 31474,
        coll_msgs: 18,
        msg_sizes: 4,
        senders: 2,
    },
    PaperTable1Row {
        label: "lu.16",
        p2p_msgs: 31474,
        coll_msgs: 18,
        msg_sizes: 2,
        senders: 2,
    },
    PaperTable1Row {
        label: "lu.32",
        p2p_msgs: 47211,
        coll_msgs: 18,
        msg_sizes: 4,
        senders: 2,
    },
    PaperTable1Row {
        label: "is.4",
        p2p_msgs: 11,
        coll_msgs: 89,
        msg_sizes: 3,
        senders: 4,
    },
    PaperTable1Row {
        label: "is.8",
        p2p_msgs: 11,
        coll_msgs: 177,
        msg_sizes: 3,
        senders: 8,
    },
    PaperTable1Row {
        label: "is.16",
        p2p_msgs: 11,
        coll_msgs: 353,
        msg_sizes: 3,
        senders: 16,
    },
    PaperTable1Row {
        label: "is.32",
        p2p_msgs: 11,
        coll_msgs: 705,
        msg_sizes: 3,
        senders: 32,
    },
    PaperTable1Row {
        label: "sw.6",
        p2p_msgs: 1438,
        coll_msgs: 36,
        msg_sizes: 2,
        senders: 3,
    },
    PaperTable1Row {
        label: "sw.16",
        p2p_msgs: 949,
        coll_msgs: 36,
        msg_sizes: 2,
        senders: 2,
    },
    PaperTable1Row {
        label: "sw.32",
        p2p_msgs: 949,
        coll_msgs: 36,
        msg_sizes: 2,
        senders: 2,
    },
];

/// Looks up the paper row for a config label.
pub fn paper_row(label: &str) -> Option<&'static PaperTable1Row> {
    PAPER_TABLE1.iter().find(|r| r.label == label)
}

/// Qualitative headline of Figure 3 (§5.1): logical accuracy exceeds
/// this at every horizon for every configuration except short-stream
/// IS.4 (≈ 80 %).
pub const PAPER_LOGICAL_FLOOR: f64 = 0.90;

/// IS.4's logical accuracy band (§5.1, "around 80 %").
pub const PAPER_IS4_LOGICAL: f64 = 0.80;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_nineteen_configs() {
        assert_eq!(PAPER_TABLE1.len(), 19);
        assert!(paper_row("bt.9").is_some());
        assert!(paper_row("sw.32").is_some());
        assert!(paper_row("ft.4").is_none());
    }

    #[test]
    fn is_rows_list_p_senders() {
        for p in [4usize, 8, 16, 32] {
            let row = paper_row(&format!("is.{p}")).unwrap();
            assert_eq!(row.senders, p);
            assert_eq!(row.p2p_msgs, 11);
        }
    }
}
