//! Regenerates **Figure 2** of the paper: the logical vs physical sender
//! streams at process 3 of BT with 4 processes. The two streams carry the
//! same messages; network randomness locally reorders the physical one
//! (positions marked `^` differ — the paper circles them).
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin fig2 [-- --csv --seed N]
//! ```

use mpp_core::eval::TextTable;
use mpp_experiments::{CliArgs, TracedRun};
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};

/// Stream positions displayed.
const SHOWN: usize = 96;

fn main() {
    let args = CliArgs::parse();
    eprintln!("fig2: running bt.4 (seed {}) ...", args.seed);
    let cfg = BenchmarkConfig::new(BenchId::Bt, 4, Class::A);
    let run = TracedRun::execute(cfg, args.seed);

    let keep = |stream: &mpp_mpisim::MessageStream| -> Vec<u64> {
        stream
            .senders
            .iter()
            .zip(&stream.kinds)
            .filter(|&(_, k)| !k.is_collective())
            .map(|(&s, _)| s)
            .collect()
    };
    let logical = keep(&run.logical);
    let physical = keep(&run.physical);
    let n = SHOWN.min(logical.len()).min(physical.len());
    let diffs_total = logical
        .iter()
        .zip(&physical)
        .filter(|(a, b)| a != b)
        .count();

    if args.csv {
        let mut t = TextTable::new(vec![
            "index",
            "logical sender",
            "physical sender",
            "differs",
        ]);
        for i in 0..n {
            t.push_row(vec![
                i.to_string(),
                logical[i].to_string(),
                physical[i].to_string(),
                (logical[i] != physical[i]).to_string(),
            ]);
        }
        print!("{}", t.to_csv());
        return;
    }

    println!("Figure 2 — sender processes to process 3, BT with 4 processes\n");
    // Render as rows of digits, the way the paper's strip chart reads.
    for start in (0..n).step_by(32) {
        let end = (start + 32).min(n);
        let fmt = |v: &[u64]| -> String {
            v[start..end]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("  idx {start:>4}..{end:<4}");
        println!("  logical : {}", fmt(&logical));
        println!("  physical: {}", fmt(&physical));
        let marks: String = (start..end)
            .map(|i| {
                if logical[i] != physical[i] {
                    "^ "
                } else {
                    "  "
                }
            })
            .collect();
        println!("            {marks}");
    }
    println!(
        "\n{} of {} positions differ over the whole run ({:.1} %): the physical \
         stream is a locally-reordered copy of the logical one.",
        diffs_total,
        logical.len(),
        100.0 * diffs_total as f64 / logical.len() as f64
    );
}
