//! Regenerates **Table 1** of the paper: the message census of the traced
//! process for all 19 benchmark configurations, side by side with the
//! paper's published values.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin table1 [-- --csv --seed N]
//! ```

use mpp_core::eval::TextTable;
use mpp_experiments::paper::paper_row;
use mpp_experiments::{run_all_paper_configs, CliArgs};

fn main() {
    let args = CliArgs::parse();
    eprintln!(
        "table1: running all 19 configurations (seed {}) ...",
        args.seed
    );
    let runs = run_all_paper_configs(args.seed);

    let mut t = TextTable::new(vec![
        "config",
        "procs",
        "p2p msgs",
        "paper p2p",
        "coll msgs",
        "paper coll",
        "msg sizes",
        "paper sizes",
        "senders",
        "paper senders",
    ]);
    for run in &runs {
        let c = &run.census;
        let paper = paper_row(&run.config.label());
        let (pp2p, pcoll, psizes, psend) = paper
            .map(|r| {
                (
                    r.p2p_msgs.to_string(),
                    r.coll_msgs.to_string(),
                    r.msg_sizes.to_string(),
                    r.senders.to_string(),
                )
            })
            .unwrap_or_default();
        t.push_row(vec![
            run.config.label(),
            run.config.procs.to_string(),
            c.p2p_msgs.to_string(),
            pp2p,
            c.coll_msgs.to_string(),
            pcoll,
            c.frequent_sizes.to_string(),
            psizes,
            c.frequent_senders.to_string(),
            psend,
        ]);
    }

    if args.csv {
        print!("{}", t.to_csv());
    } else {
        println!("Table 1 — MPI applications used for this study (traced process census)");
        println!("'paper *' columns are the published values; see EXPERIMENTS.md for deltas.\n");
        print!("{}", t.render());
    }
}
