//! Ablation studies backing the paper's design arguments (§4.2, §6):
//!
//! * `roster`    — the DPD against every baseline predictor family
//!   (last-value, frequency, stride, Afsahi–Dimopoulos single-cycle and
//!   tagging, order-1/2 Markov) on logical and physical BT.9 streams.
//! * `window`    — sensitivity to the DPD window / max-lag choice.
//! * `tolerance` — sensitivity to the mismatch tolerance on noisy
//!   physical streams.
//! * `noise`     — physical accuracy vs network-noise magnitude.
//! * `set`       — §5.3: ordered vs unordered (multiset) accuracy on
//!   physical streams.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin ablation [-- roster|window|tolerance|noise|set|all] [--csv --seed N]
//! ```

use mpp_core::dpd::{DpdConfig, DpdPredictor};
use mpp_core::eval::{SetEvaluator, StreamEvaluator, TextTable};
use mpp_core::predictors::PredictorKind;
use mpp_core::stream::Symbol;
use mpp_experiments::{experiment_dpd_config, CliArgs, Level, Target, TracedRun, HORIZONS};
use mpp_mpisim::WorldConfig;
use mpp_nasbench::{run_with_world, BenchId, BenchmarkConfig, Class};

fn main() {
    let args = CliArgs::parse();
    let what = args.positional.first().map(String::as_str).unwrap_or("all");
    match what {
        "roster" => roster(&args),
        "window" => window(&args),
        "tolerance" => tolerance(&args),
        "noise" => noise(&args),
        "set" => set_accuracy(&args),
        "torus" => torus(&args),
        "all" => {
            roster(&args);
            window(&args);
            tolerance(&args);
            noise(&args);
            set_accuracy(&args);
            torus(&args);
        }
        other => {
            eprintln!(
                "unknown subcommand {other:?}; expected roster|window|tolerance|noise|set|torus|all"
            );
            std::process::exit(2);
        }
    }
}

fn eval_with(kind: PredictorKind, cfg: &DpdConfig, stream: &[Symbol]) -> Vec<Option<f64>> {
    let mut ev = StreamEvaluator::new(kind.build(cfg), HORIZONS);
    ev.feed_stream(stream);
    ev.tracker().accuracies()
}

fn fmt_acc(a: Option<f64>) -> String {
    match a {
        Some(v) => format!("{:.1}", v * 100.0),
        None => "-".into(),
    }
}

fn roster(args: &CliArgs) {
    println!("\n== ablation: predictor roster on BT.9 sender streams ==\n");
    eprintln!("  running bt.9 ...");
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Bt, 9, Class::A), args.seed);
    let cfg = experiment_dpd_config();

    for level in [Level::Logical, Level::Physical] {
        let stream = run.stream(level, Target::Sender);
        let mut t = TextTable::new(vec!["predictor", "+1 %", "+2 %", "+3 %", "+4 %", "+5 %"]);
        for kind in PredictorKind::ALL {
            let acc = eval_with(kind, &cfg, stream);
            let mut row = vec![kind.label().to_string()];
            row.extend(acc.into_iter().map(fmt_acc));
            t.push_row(row);
        }
        println!("{} stream:", level.label());
        print_table(args, &t);
    }
    println!("single-step heuristics compete at +1 but cannot sustain deep horizons; the DPD's periodicity knowledge keeps +2..+5 at the +1 level (§4.2).");
}

fn window(args: &CliArgs) {
    println!("\n== ablation: DPD window / max-lag sensitivity (LU.32 logical sizes) ==\n");
    eprintln!("  running lu.32 ...");
    // LU.32's iteration pattern is 189 messages long: max_lag below that
    // must fail, anything above should be perfect.
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Lu, 32, Class::A), args.seed);
    let stream = run.stream(Level::Logical, Target::Size);
    let mut t = TextTable::new(vec!["max_lag", "window", "+1 %", "+5 %"]);
    for max_lag in [32usize, 64, 128, 192, 256, 384] {
        let cfg = DpdConfig {
            window: max_lag * 2,
            max_lag,
            tolerance: 0.2,
            ..DpdConfig::default()
        };
        let acc = eval_with(PredictorKind::Dpd, &cfg, stream);
        t.push_row(vec![
            max_lag.to_string(),
            (max_lag * 2).to_string(),
            fmt_acc(acc[0]),
            fmt_acc(acc[4]),
        ]);
    }
    print_table(args, &t);
    println!("the pattern is 189 messages long: max_lag >= 192 is the knee.");
}

fn tolerance(args: &CliArgs) {
    println!("\n== ablation: mismatch tolerance on the BT.9 physical sender stream ==\n");
    eprintln!("  running bt.9 ...");
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Bt, 9, Class::A), args.seed);
    let stream = run.stream(Level::Physical, Target::Sender);
    let mut t = TextTable::new(vec!["tolerance", "dpd +1 %", "dpd-vote +1 %"]);
    for tol in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4] {
        let cfg = DpdConfig {
            tolerance: tol,
            ..experiment_dpd_config()
        };
        let copy = eval_with(PredictorKind::Dpd, &cfg, stream);
        let vote = eval_with(PredictorKind::DpdVote, &cfg, stream);
        t.push_row(vec![
            format!("{tol:.2}"),
            fmt_acc(copy[0]),
            fmt_acc(vote[0]),
        ]);
    }
    print_table(args, &t);
    println!("tolerance 0 reproduces the strict sign metric of eq. (1): any reordering in the window suppresses the period; a small tolerance recovers it.");
}

fn noise(args: &CliArgs) {
    println!("\n== ablation: physical accuracy vs network-noise magnitude (BT.9 senders) ==\n");
    let mut t = TextTable::new(vec!["noise scale", "+1 %", "+3 %", "+5 %"]);
    for scale in [0.0, 0.5, 1.0, 2.0, 4.0] {
        eprintln!("  running bt.9 at noise x{scale} ...");
        let cfg = BenchmarkConfig::new(BenchId::Bt, 9, Class::A);
        let wcfg = WorldConfig::new(cfg.procs)
            .seed(args.seed)
            .noise_scale(scale);
        let trace = run_with_world(&cfg, wcfg);
        let run = TracedRun::from_trace(cfg, &trace);
        let acc = eval_with(
            PredictorKind::Dpd,
            &experiment_dpd_config(),
            run.stream(Level::Physical, Target::Sender),
        );
        t.push_row(vec![
            format!("{scale:.1}"),
            fmt_acc(acc[0]),
            fmt_acc(acc[2]),
            fmt_acc(acc[4]),
        ]);
    }
    print_table(args, &t);
    println!("at scale 0 the physical stream equals the logical one (Figure 3); accuracy decays as randomness grows (Figure 4's regime).");
}

fn set_accuracy(args: &CliArgs) {
    println!(
        "\n== ablation: ordered vs unordered (set) prediction on physical streams (§5.3) ==\n"
    );
    let mut t = TextTable::new(vec![
        "stream",
        "ordered +1 %",
        "mean +1..+5 %",
        "set-of-5 hit %",
    ]);
    for cfg in [
        BenchmarkConfig::new(BenchId::Bt, 9, Class::A),
        BenchmarkConfig::new(BenchId::Is, 16, Class::A),
        BenchmarkConfig::new(BenchId::Lu, 16, Class::A),
    ] {
        eprintln!("  running {} ...", cfg.label());
        let run = TracedRun::execute(cfg, args.seed);
        let stream = run.stream(Level::Physical, Target::Sender);
        let dpd = experiment_dpd_config();

        let mut ordered = StreamEvaluator::new(DpdPredictor::new(dpd.clone()), HORIZONS);
        ordered.feed_stream(stream);
        let o1 = ordered.tracker().horizon(1).accuracy();
        let om = ordered.tracker().mean_accuracy();

        let mut set = SetEvaluator::new(DpdPredictor::new(dpd), HORIZONS);
        set.feed_stream(stream);

        t.push_row(vec![
            cfg.label(),
            fmt_acc(o1),
            fmt_acc(om),
            fmt_acc(set.hit_rate()),
        ]);
    }
    print_table(args, &t);
    println!("\"knowing the next senders and their message size may be useful [without] the exact temporal order\" — the set metric stays above the ordered one on reordered streams.");
}

fn torus(args: &CliArgs) {
    println!("\n== ablation: route-spread source — hashed pairs vs 2-D torus hops ==\n");
    // Does Figure 4 depend on *how* the systematic per-pair latency
    // spread arises? Replace the hashed pair factor with hop-count
    // distances on a torus and re-measure bt.9 physical accuracy.
    use mpp_mpisim::net::TorusNetwork;
    use mpp_mpisim::World;
    let mut t = TextTable::new(vec!["network", "+1 %", "+3 %", "+5 %"]);
    for (name, torus) in [("hashed pair factors", false), ("torus hop counts", true)] {
        eprintln!("  running bt.9 on {name} ...");
        let cfg = BenchmarkConfig::new(BenchId::Bt, 9, Class::A);
        let run = if torus {
            let wcfg = WorldConfig::new(cfg.procs).seed(args.seed);
            let net = TorusNetwork::from_config(&wcfg);
            let program = mpp_nasbench::build_program(&cfg);
            let trace = World::new(wcfg, net).run(program.as_ref());
            TracedRun::from_trace(cfg, &trace)
        } else {
            TracedRun::execute(cfg, args.seed)
        };
        let acc = eval_with(
            PredictorKind::Dpd,
            &experiment_dpd_config(),
            run.stream(Level::Physical, Target::Sender),
        );
        t.push_row(vec![
            name.to_string(),
            fmt_acc(acc[0]),
            fmt_acc(acc[2]),
            fmt_acc(acc[4]),
        ]);
    }
    print_table(args, &t);
    println!("the qualitative regime (partial physical predictability) survives a different route-spread mechanism.");
}

fn print_table(args: &CliArgs, t: &TextTable) {
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!();
}
