//! Debug/inspection tool: prints the logical and physical streams of the
//! traced rank for any configuration, with difference markers and the
//! DPD's view of the physical stream (per-lag mismatch ratios around the
//! true period).
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin streams -- bt 9 [--seed N] [--count M]
//! ```

use mpp_core::dpd::PeriodicityDetector;
use mpp_core::stream::exact_period;
use mpp_experiments::{experiment_dpd_config, CliArgs, TracedRun};
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};

fn main() {
    let args = CliArgs::parse();
    let bench = args.positional.first().map(String::as_str).unwrap_or("bt");
    let procs: usize = args
        .positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let count: usize = args
        .positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let id = match bench {
        "bt" => BenchId::Bt,
        "cg" => BenchId::Cg,
        "lu" => BenchId::Lu,
        "is" => BenchId::Is,
        "sw" => BenchId::Sweep3d,
        other => {
            eprintln!("unknown benchmark {other}");
            std::process::exit(2);
        }
    };
    let cfg = BenchmarkConfig::new(id, procs, Class::A);
    eprintln!("running {} ...", cfg.label());
    // Noise-source toggles for bisection: pass any of
    // nojitter/nocongestion/noimbalance/nopair as extra positionals.
    let mut wcfg = mpp_mpisim::WorldConfig::new(cfg.procs).seed(args.seed);
    for flag in &args.positional {
        match flag.as_str() {
            "nojitter" => wcfg.jitter_frac = 0.0,
            "nocongestion" => wcfg.congestion_prob = 0.0,
            "noimbalance" => {
                wcfg.compute_imbalance = 0.0;
                wcfg.compute_systematic = 0.0;
            }
            "nopair" => wcfg.pair_spread = 0.0,
            _ => {}
        }
    }
    let trace = mpp_nasbench::run_with_world(&cfg, wcfg);
    let run = TracedRun::from_trace(cfg, &trace);

    let log = &run.logical.senders;
    let phys = &run.physical.senders;
    let diffs = log.iter().zip(phys).filter(|(a, b)| a != b).count();
    println!(
        "{}: traced rank {}, {} messages, {} positions differ ({:.1} %)",
        cfg.label(),
        run.rank,
        log.len(),
        diffs,
        100.0 * diffs as f64 / log.len().max(1) as f64
    );

    // Show a window from the middle of the run (steady state).
    let start = (log.len() / 2).min(log.len().saturating_sub(count));
    let end = (start + count).min(log.len());
    for s in (start..end).step_by(30) {
        let e = (s + 30).min(end);
        let f = |v: &[u64]| {
            v[s..e]
                .iter()
                .map(|x| format!("{x:>2}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("  idx {s}");
        println!("  log : {}", f(log));
        println!("  phys: {}", f(phys));
        let marks: String = (s..e)
            .map(|i| if log[i] != phys[i] { " ^ " } else { "   " })
            .collect();
        println!("       {marks}");
    }

    // DPD view of the physical stream.
    let mut det = PeriodicityDetector::new(experiment_dpd_config());
    for &v in phys {
        det.observe(v);
    }
    let tail = &log[log.len().saturating_sub(600)..];
    let true_p = exact_period(tail);
    println!("\nlogical pattern length (tail): {true_p:?}");
    println!("DPD period on physical stream: {:?}", det.period());
    let mut ratios: Vec<(usize, f64)> = (1..=det.config().max_lag)
        .filter_map(|m| det.mismatch_ratio(m).map(|r| (m, r)))
        .collect();
    ratios.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("cleanest lags (lag, mismatch ratio):");
    for (m, r) in ratios.iter().take(8) {
        println!("  lag {m:>4}: {:.3}", r);
    }
}
