//! Quantifies the **Section 2** scalability proposals (the paper argues
//! them qualitatively; this binary measures them in simulation):
//!
//! * `memory`   — §2.1 buffer pre-allocation: all-pairs vs on-demand vs
//!   prediction-driven, on real benchmark arrival streams, plus the
//!   Blue-Gene-scale memory model sweep.
//! * `credits`  — §2.2 credit-based flow control under collective incast.
//! * `protocol` — §2.3 rendezvous elimination for predicted long
//!   messages.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin scalability [-- memory|credits|protocol|all] [--csv --seed N]
//! ```

use mpp_core::eval::TextTable;
use mpp_experiments::{experiment_dpd_config, CliArgs, TracedRun};
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};
use mpp_runtime::{
    simulate_buffers, simulate_credits, simulate_protocol, BufferPolicy, CreditPolicy, MemoryModel,
    ProtocolCosts,
};

fn main() {
    let args = CliArgs::parse();
    let what = args.positional.first().map(String::as_str).unwrap_or("all");
    match what {
        "memory" => memory(&args),
        "credits" => credits(&args),
        "protocol" => protocol(&args),
        "e2e" => end_to_end(&args),
        "all" => {
            memory(&args);
            credits(&args);
            protocol(&args);
            end_to_end(&args);
        }
        other => {
            eprintln!("unknown subcommand {other:?}; expected memory|credits|protocol|e2e|all");
            std::process::exit(2);
        }
    }
}

/// (sender, size) arrival stream of a traced run's physical view.
fn arrival_stream(run: &TracedRun) -> Vec<(u64, u64)> {
    run.physical
        .senders
        .iter()
        .zip(&run.physical.sizes)
        .map(|(&s, &b)| (s, b))
        .collect()
}

fn memory(args: &CliArgs) {
    println!("\n== §2.1 memory: eager-buffer pre-allocation ==\n");

    // Part 1: the Blue Gene arithmetic, swept over machine sizes.
    let model = MemoryModel::default();
    let mut t = TextTable::new(vec![
        "nodes",
        "all-pairs MB/proc",
        "predicted (8 partners) MB/proc",
        "reduction",
    ]);
    for p in [100usize, 1_000, 10_000, 100_000] {
        let all = model.all_pairs_bytes(p) as f64 / (1024.0 * 1024.0);
        let pred = model.predictive_bytes(6, 2) as f64 / (1024.0 * 1024.0);
        t.push_row(vec![
            p.to_string(),
            format!("{all:.1}"),
            format!("{pred:.3}"),
            format!("{:.0}x", model.reduction_factor(p, 6, 2)),
        ]);
    }
    print_table(args, &t);

    // Part 2: policies replayed on real benchmark arrival streams.
    eprintln!("  running benchmark streams ...");
    let configs = [
        BenchmarkConfig::new(BenchId::Bt, 9, Class::A),
        BenchmarkConfig::new(BenchId::Lu, 16, Class::A),
        BenchmarkConfig::new(BenchId::Sweep3d, 16, Class::A),
    ];
    let mut t = TextTable::new(vec![
        "stream",
        "policy",
        "hit rate %",
        "wire msgs/delivery",
        "peak KB",
        "mean KB",
    ]);
    for cfg in configs {
        let run = TracedRun::execute(cfg, args.seed);
        let stream = arrival_stream(&run);
        for policy in [
            BufferPolicy::AllPairs,
            BufferPolicy::OnDemand,
            BufferPolicy::Predictive { depth: 5 },
        ] {
            let out = simulate_buffers(
                policy,
                &stream,
                cfg.procs,
                16 * 1024,
                &experiment_dpd_config(),
            );
            t.push_row(vec![
                cfg.label(),
                out.policy.label(),
                format!("{:.1}", out.hit_rate() * 100.0),
                format!("{:.2}", out.mean_wire_messages()),
                format!("{:.1}", out.peak_bytes as f64 / 1024.0),
                format!("{:.1}", out.mean_bytes / 1024.0),
            ]);
        }
    }
    print_table(args, &t);
}

fn credits(args: &CliArgs) {
    println!("\n== §2.2 control flow: credit-based short-message handling ==\n");
    eprintln!("  running is.32 ...");
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Is, 32, Class::A), args.seed);
    // Keep the short messages (the §2.2 concern); the collective incast
    // of IS delivers bursts of them.
    let stream: Vec<(u64, u64)> = arrival_stream(&run)
        .into_iter()
        .filter(|&(_, b)| b <= 16 * 1024)
        .collect();
    let burst = 32;
    let budget = 16 * 1024;

    let mut t = TextTable::new(vec![
        "policy",
        "eager %",
        "asked %",
        "overflow KB",
        "peak KB (budget 16)",
    ]);
    for policy in [
        CreditPolicy::UnsolicitedEager,
        CreditPolicy::AlwaysAsk,
        CreditPolicy::PredictiveCredits,
    ] {
        let out = simulate_credits(policy, &stream, burst, budget, &experiment_dpd_config());
        let total = (out.eager + out.asked).max(1);
        t.push_row(vec![
            out.policy.label().to_string(),
            format!("{:.1}", 100.0 * out.eager as f64 / total as f64),
            format!("{:.1}", 100.0 * out.asked as f64 / total as f64),
            format!("{:.1}", out.overflow_bytes as f64 / 1024.0),
            format!("{:.1}", out.peak_bytes as f64 / 1024.0),
        ]);
    }
    print_table(args, &t);
    println!("unsolicited eager loses bytes once the budget is exceeded; predictive credits stay within budget without giving up the whole fast path.");
}

fn protocol(args: &CliArgs) {
    println!("\n== §2.3 protocols: predicted pre-allocation for long messages ==\n");
    eprintln!("  running cg.8 and bt.4 ...");
    let costs = ProtocolCosts::default();
    let mut t = TextTable::new(vec![
        "stream",
        "large msgs",
        "hit %",
        "baseline ms",
        "predicted ms",
        "oracle ms",
        "gap recovered %",
    ]);
    for cfg in [
        BenchmarkConfig::new(BenchId::Cg, 8, Class::A),
        BenchmarkConfig::new(BenchId::Bt, 4, Class::A),
    ] {
        let run = TracedRun::execute(cfg, args.seed);
        let stream = arrival_stream(&run);
        let out = simulate_protocol(&costs, &stream, 5, &experiment_dpd_config());
        let large = out.hits + out.misses;
        t.push_row(vec![
            cfg.label(),
            large.to_string(),
            format!("{:.1}", 100.0 * out.hits as f64 / large.max(1) as f64),
            format!("{:.2}", out.baseline_ns as f64 / 1e6),
            format!("{:.2}", out.predicted_ns as f64 / 1e6),
            format!("{:.2}", out.oracle_ns as f64 / 1e6),
            format!("{:.1}", out.gap_recovered() * 100.0),
        ]);
    }
    print_table(args, &t);
    println!("'oracle' sends every message eagerly — the lower bound the paper's proposal approaches when prediction hits.");
}

fn end_to_end(args: &CliArgs) {
    println!("\n== §2.3 end to end: DPD oracle inside the simulator ==\n");
    // The protocol table above uses per-message cost arithmetic; this one
    // runs the actual simulator twice — with and without every rank
    // carrying a live DPD arrival oracle — and compares virtual makespan.
    use mpp_mpisim::net::JitterNetwork;
    use mpp_mpisim::World;
    use mpp_runtime::DpdOracleFactory;
    let mut t = TextTable::new(vec![
        "workload",
        "baseline makespan ms",
        "oracled makespan ms",
        "speedup %",
    ]);
    for cfg in [
        BenchmarkConfig::new(BenchId::Cg, 8, Class::A),
        BenchmarkConfig::new(BenchId::Bt, 4, Class::A),
        BenchmarkConfig::new(BenchId::Bt, 9, Class::A),
    ] {
        eprintln!("  running {} twice ...", cfg.label());
        let program = mpp_nasbench::build_program(&cfg);
        let wcfg = mpp_mpisim::WorldConfig::new(cfg.procs).seed(args.seed);
        let base =
            World::new(wcfg.clone(), JitterNetwork::from_config(&wcfg)).run(program.as_ref());
        let oracled = World::new(wcfg.clone(), JitterNetwork::from_config(&wcfg))
            .with_oracle(DpdOracleFactory {
                cfg: experiment_dpd_config(),
                depth: 5,
            })
            .run(program.as_ref());
        let b = base.makespan().as_nanos() as f64 / 1e6;
        let o = oracled.makespan().as_nanos() as f64 / 1e6;
        t.push_row(vec![
            cfg.label(),
            format!("{b:.2}"),
            format!("{o:.2}"),
            format!("{:.1}", (1.0 - o / b) * 100.0),
        ]);
    }
    print_table(args, &t);
    println!("every rank runs a live DPD on its delivery stream; correctly predicted rendezvous messages skip the handshake in virtual time.");
}

fn print_table(args: &CliArgs, t: &TextTable) {
    if args.csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!();
}
