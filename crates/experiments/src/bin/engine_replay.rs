//! Replays NAS benchmark traces through the `mpp-engine` serving layer
//! at full speed: every rank's sender/size/tag streams are ingested in
//! batches, then the engine's online `+1` accuracy, period churn, and
//! ingest rate are reported per configuration and per shard.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin engine_replay -- [--csv] [--seed N] [--shards K] [bt 9 | cg 8 | ...]
//! ```
//!
//! With no positional arguments, the paper's full configuration roster
//! is replayed (the Table 1 set), giving an engine-level summary of the
//! paper's central claim: these streams are predictable enough to serve.

use mpp_core::dpd::DpdConfig;
use mpp_engine::{Engine, EngineConfig, Observation, StreamKey, StreamKind};
use mpp_experiments::CliArgs;
use mpp_nasbench::{paper_configs, run_config, BenchId, BenchmarkConfig, Class};
use std::time::Instant;

/// Events ingested per `observe_batch` call during replay.
const REPLAY_BATCH: usize = 8192;

/// Flattens a trace into engine observations, interleaving ranks in
/// logical-index order (round-robin-ish, like a serving layer ingesting
/// many ranks' deliveries concurrently).
fn trace_to_events(trace: &mpp_mpisim::Trace) -> Vec<Observation> {
    let mut out = Vec::new();
    let mut cursors: Vec<usize> = vec![0; trace.nprocs()];
    loop {
        let mut progressed = false;
        for rank in 0..trace.nprocs() {
            let events = trace.receives_of(rank);
            if cursors[rank] >= events.len() {
                continue;
            }
            let e = &events[cursors[rank]];
            cursors[rank] += 1;
            progressed = true;
            let r = rank as u32;
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Sender),
                e.src as u64,
            ));
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Size),
                e.bytes,
            ));
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Tag),
                u64::from(e.tag),
            ));
        }
        if !progressed {
            return out;
        }
    }
}

struct ReplayReport {
    label: String,
    events: usize,
    streams: u64,
    hit_rate: f64,
    churn: u64,
    events_per_sec: f64,
}

fn replay(config: &BenchmarkConfig, seed: u64, shards: usize) -> ReplayReport {
    let trace = run_config(config, seed);
    let events = trace_to_events(&trace);
    let mut engine = Engine::new(EngineConfig {
        shards,
        dpd: DpdConfig::default(),
        ..EngineConfig::default()
    });
    let start = Instant::now();
    for chunk in events.chunks(REPLAY_BATCH) {
        engine.observe_batch(chunk);
    }
    let secs = start.elapsed().as_secs_f64();
    let total = engine.metrics_total();
    ReplayReport {
        label: config.label(),
        events: events.len(),
        streams: total.streams,
        hit_rate: total.hit_rate().unwrap_or(0.0),
        churn: total.period_churn,
        events_per_sec: events.len() as f64 / secs.max(1e-12),
    }
}

fn parse_bench(name: &str) -> Option<BenchId> {
    match name {
        "bt" => Some(BenchId::Bt),
        "cg" => Some(BenchId::Cg),
        "lu" => Some(BenchId::Lu),
        "is" => Some(BenchId::Is),
        "sw" | "sweep3d" => Some(BenchId::Sweep3d),
        _ => None,
    }
}

fn main() {
    let mut args = CliArgs::parse();
    let seed = args.seed;
    let shards = match args.take_flag("--shards") {
        Some(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--shards needs a positive integer");
            std::process::exit(2);
        }),
        None => std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
    };
    let positional = args.positional;

    let configs: Vec<BenchmarkConfig> = if positional.is_empty() {
        paper_configs()
    } else {
        let id = parse_bench(&positional[0]).unwrap_or_else(|| {
            eprintln!("unknown benchmark {}", positional[0]);
            std::process::exit(2);
        });
        // Default to each benchmark's smallest paper configuration (CG,
        // LU and IS require power-of-two worlds; BT squares; SW 2x3).
        let procs: usize = positional
            .get(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| id.paper_proc_counts()[0]);
        let class = match positional.get(2).map(String::as_str) {
            Some("S") | None => Class::S,
            Some("A") => Class::A,
            Some("B") => Class::B,
            Some(other) => {
                eprintln!("unknown class {other}");
                std::process::exit(2);
            }
        };
        vec![BenchmarkConfig::new(id, procs, class)]
    };

    if args.csv {
        println!("config,events,streams,hit_rate,period_churn,events_per_sec,shards");
    } else {
        println!("engine replay — {shards} shard(s), seed {seed}");
        println!(
            "{:<14} {:>9} {:>8} {:>9} {:>7} {:>14}",
            "config", "events", "streams", "hit_rate", "churn", "events/sec"
        );
    }
    for config in &configs {
        let r = replay(config, seed, shards);
        if args.csv {
            println!(
                "{},{},{},{:.4},{},{:.0},{}",
                r.label, r.events, r.streams, r.hit_rate, r.churn, r.events_per_sec, shards
            );
        } else {
            println!(
                "{:<14} {:>9} {:>8} {:>8.1}% {:>7} {:>14.0}",
                r.label,
                r.events,
                r.streams,
                100.0 * r.hit_rate,
                r.churn,
                r.events_per_sec
            );
        }
    }
}
