//! Replays NAS benchmark traces through the `mpp-engine` serving layer
//! at full speed: every rank's sender/size/tag streams are ingested in
//! batches, then the engine's online `+1` accuracy, period churn,
//! eviction counts, and ingest rate are reported per configuration.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin engine_replay -- \
//!     [--csv] [--seed N] [--shards K] [--ttl N] [--mode persistent|scoped] \
//!     [--queue-cap N] [--backpressure block|shed] \
//!     [--jobs K] [--engines E] [--ensemble] [--ensemble-full] [--rebalance] \
//!     [--telemetry-json PATH] [--stats-every N] [bt 9 | cg 8 | ring 8 | pp 8 | ...]
//! ```
//!
//! With no positional arguments, the paper's full configuration roster
//! is replayed (the Table 1 set), giving an engine-level summary of the
//! paper's central claim: these streams are predictable enough to serve.
//! `--mode` selects the persistent-worker engine (default) or the
//! scoped per-batch-thread engine; `--ttl N` evicts streams idle for
//! more than `N` engine-time events. `--queue-cap N` bounds each
//! persistent shard's observe lane to `N` queued commands and
//! `--backpressure` picks the full-lane policy: `block` (default,
//! bit-identical results) or `shed` (drop-with-count; the `shed`
//! column reports the losses).
//!
//! Either telemetry flag enables the engine's telemetry layer (latency
//! histograms, counters, flight recorder). `--telemetry-json PATH`
//! writes one JSON document covering every replayed configuration —
//! per-config engine counters next to the full telemetry snapshot, so
//! the `telemetry_check` binary can cross-validate them. `--stats-every
//! N` captures a cumulative snapshot every `N` ingest batches and (in
//! table mode) prints ingest/queue-wait latency progress lines; the
//! extra snapshot round-trips perturb `events/sec`, so keep it off when
//! measuring rate. Telemetry also adds three CSV columns: ingest p50 /
//! p99 and queue-wait p99 (empty when telemetry is off).
//!
//! `--ensemble` swaps the DPD-only predictor bank for the standard
//! champion/challenger roster: every stream scores a last-value,
//! stride and first-order-Markov challenger next to the primary DPD
//! and serves from whichever holds the championship. Table mode gains
//! one `[model]` row per roster member (win rate = share of events
//! served as champion, plus the member's own `+1` hit rate), and
//! telemetry snapshots carry `model_mix_*`/`champion_swaps` counters
//! and `champion_swapped` flight events. `--ensemble-full` widens the
//! roster to every implemented challenger (adds frequency, cycle, tag
//! and the hybrid committee).
//!
//! `--rebalance` (persistent mode, `--engines` ≥ 2) enables the
//! load-aware rebalancer: the replay interleaves a *skewed* hot/cold
//! job mix (job `j` replays every `(j+1)`-th event, so job 0 is
//! hottest), closes a rebalance epoch every few ingest batches, and
//! live-migrates jobs off overloaded members mid-run. Results are
//! bit-identical to the same skewed replay without rebalancing; the
//! table gains a `[rebalance]` summary line, and telemetry snapshots
//! carry `rebalance_epochs`/`rebalance_moves`/`rebalance_skipped`
//! counters plus `job_migrated` flight events.
//!
//! `--snapshot PATH` replays a single configuration to its midpoint
//! (half the trace, rounded down to a whole ingest batch), writes the
//! engine's versioned snapshot to `PATH`, and exits. `--restore PATH`
//! boots the engine from a snapshot written with the same
//! configuration and replays only the remaining events — the report
//! covers the whole trace, with `restored`/`replayed` splitting the
//! events carried in from the snapshot from those ingested live. Both
//! flags require exactly one configuration and `--engines 1`.
//!
//! `--wal DIR` replays a single configuration through a *durable*
//! persistent engine: every batch is appended to the segmented
//! observation log under `DIR`, a snapshot checkpoint anchors the
//! midpoint, and the log is fsynced before exit. `--recover DIR`
//! rebuilds the engine from `DIR` (newest valid snapshot + log tail,
//! truncating any torn frame) and replays only the trace events the
//! recovered state had not yet ingested — so `--wal` run, killed at
//! any moment, then `--recover` run, lands on the same final state as
//! an uninterrupted replay (the CI kill-9 smoke does exactly that).
//! Both flags require one configuration, `--engines 1`, persistent
//! mode. Restored/recovered runs also audit their own accounting: if
//! the engine's `events_ingested` disagrees with `restored +
//! replayed`, or events went missing against the trace, the run exits
//! nonzero.

use mpp_engine::{BackpressurePolicy, DurabilityConfig, TelemetrySnapshot};
use mpp_experiments::replay::{
    replay, replay_from_snapshot, replay_recover, replay_to_snapshot, replay_with_wal, EngineMode,
    ReplayOpts, ReplayReport,
};
use mpp_experiments::CliArgs;
use mpp_nasbench::{paper_configs, BenchId, BenchmarkConfig, Class};

/// The three latency columns appended to CSV rows (empty without
/// telemetry): ingest-batch p50/p99 and queue-wait p99, nanoseconds.
fn telemetry_csv_fields(snap: Option<&TelemetrySnapshot>) -> String {
    match snap {
        Some(s) => {
            let q = |name: &str, quantile: f64| {
                s.histogram(name)
                    .map_or(String::new(), |h| h.quantile(quantile).to_string())
            };
            format!(
                "{},{},{}",
                q("observe_batch_ns", 0.5),
                q("observe_batch_ns", 0.99),
                q("queue_wait_ns", 0.99)
            )
        }
        None => ",,".to_string(),
    }
}

/// One config's entry in the `--telemetry-json` document: the engine's
/// counter rollup next to the telemetry snapshot, so `telemetry_check`
/// can cross-validate the two without re-running the replay.
fn telemetry_json_entry(out: &mut String, r: &ReplayReport, snap: &TelemetrySnapshot) {
    let t = &r.total;
    out.push_str(&format!(
        "{{\"config\":\"{}\",\"events\":{},\
         \"restored_events\":{},\"replayed_events\":{},\"metrics\":{{\
         \"events_ingested\":{},\"predictions_served\":{},\
         \"forecasts_served\":{},\"forecast_predictions\":{},\
         \"hits\":{},\"misses\":{},\"abstentions\":{},\
         \"period_churn\":{},\"evicted\":{},\"resident_streams\":{}}},\
         \"telemetry\":",
        r.label,
        r.events,
        r.restored_events,
        r.replayed_events,
        t.events_ingested,
        t.predictions_served,
        t.forecasts_served,
        t.forecast_predictions,
        t.hits,
        t.misses,
        t.abstentions,
        t.period_churn,
        t.evicted,
        t.resident_streams,
    ));
    snap.write_json(out);
    out.push('}');
}

fn parse_bench(name: &str) -> Option<BenchId> {
    match name {
        "bt" => Some(BenchId::Bt),
        "cg" => Some(BenchId::Cg),
        "lu" => Some(BenchId::Lu),
        "is" => Some(BenchId::Is),
        "sw" | "sweep3d" => Some(BenchId::Sweep3d),
        "ring" => Some(BenchId::Ring),
        "pp" | "pingpong" => Some(BenchId::PingPong),
        _ => None,
    }
}

fn main() {
    let mut args = CliArgs::parse();
    let seed = args.seed;
    let shards = match args.take_flag("--shards") {
        Some(v) => v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--shards needs a positive integer");
            std::process::exit(2);
        }),
        None => std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
    };
    let ttl: Option<u64> = args.take_flag("--ttl").map(|v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--ttl needs a positive event count");
            std::process::exit(2);
        })
    });
    let mode = match args.take_flag("--mode").as_deref() {
        None | Some("persistent") => EngineMode::Persistent,
        Some("scoped") => EngineMode::Scoped,
        Some(other) => {
            eprintln!("unknown mode {other} (persistent|scoped)");
            std::process::exit(2);
        }
    };
    let queue_cap: Option<usize> = args.take_flag("--queue-cap").map(|v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--queue-cap needs a positive command count");
            std::process::exit(2);
        })
    });
    let backpressure_flag = args.take_flag("--backpressure");
    let backpressure = match backpressure_flag.as_deref() {
        None | Some("block") => BackpressurePolicy::Block,
        Some("shed") => BackpressurePolicy::Shed,
        Some(other) => {
            eprintln!("unknown backpressure policy {other} (block|shed)");
            std::process::exit(2);
        }
    };
    if queue_cap.is_some() && mode == EngineMode::Scoped {
        eprintln!("--queue-cap applies to the persistent mode only");
        std::process::exit(2);
    }
    let jobs: usize = args.take_flag("--jobs").map_or(1, |v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--jobs needs a positive job count");
            std::process::exit(2);
        })
    });
    let engines: usize = args.take_flag("--engines").map_or(1, |v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--engines needs a positive engine count");
            std::process::exit(2);
        })
    });
    if engines > 1 && mode == EngineMode::Scoped {
        eprintln!("--engines applies to the persistent mode only (federation members)");
        std::process::exit(2);
    }
    let ensemble = args.take_bool_flag("--ensemble");
    let ensemble_full = args.take_bool_flag("--ensemble-full");
    let rebalance = args.take_bool_flag("--rebalance");
    if rebalance && (mode == EngineMode::Scoped || engines < 2) {
        eprintln!(
            "--rebalance needs the persistent mode and --engines >= 2 (load-aware placement)"
        );
        std::process::exit(2);
    }
    if rebalance && jobs < 2 {
        eprintln!("--rebalance needs --jobs >= 2 (a single job cannot be skewed or rebalanced)");
        std::process::exit(2);
    }
    let snapshot_path = args.take_flag("--snapshot");
    let restore_path = args.take_flag("--restore");
    if snapshot_path.is_some() && restore_path.is_some() {
        eprintln!("--snapshot and --restore are mutually exclusive (write, then restore)");
        std::process::exit(2);
    }
    if (snapshot_path.is_some() || restore_path.is_some()) && engines > 1 {
        eprintln!("snapshots capture a single engine (--engines 1)");
        std::process::exit(2);
    }
    let wal_dir = args.take_flag("--wal");
    let recover_dir = args.take_flag("--recover");
    if wal_dir.is_some() && recover_dir.is_some() {
        eprintln!("--wal and --recover are mutually exclusive (log, then recover)");
        std::process::exit(2);
    }
    let durable = wal_dir.is_some() || recover_dir.is_some();
    if durable && (snapshot_path.is_some() || restore_path.is_some()) {
        eprintln!("--wal/--recover manage their own snapshots (no --snapshot/--restore alongside)");
        std::process::exit(2);
    }
    if durable && (engines > 1 || mode != EngineMode::Persistent) {
        eprintln!("the observation log records a single persistent engine (--engines 1)");
        std::process::exit(2);
    }
    let telemetry_json = args.take_flag("--telemetry-json");
    let stats_every: Option<usize> = args.take_flag("--stats-every").map(|v| {
        v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            eprintln!("--stats-every needs a positive batch count");
            std::process::exit(2);
        })
    });
    // Either flag opts the replay into the telemetry layer.
    let telemetry = telemetry_json.is_some() || stats_every.is_some();
    // A policy without a lane bound would be a silent no-op (policies
    // only apply to full bounded lanes) — reject the misconfiguration
    // instead of reporting shed=0 on an unbounded run.
    if backpressure_flag.is_some() && queue_cap.is_none() {
        eprintln!("--backpressure requires --queue-cap (policies act on bounded lanes only)");
        std::process::exit(2);
    }
    let positional = args.positional;

    let configs: Vec<BenchmarkConfig> = if positional.is_empty() {
        paper_configs()
    } else {
        let id = parse_bench(&positional[0]).unwrap_or_else(|| {
            eprintln!("unknown benchmark {}", positional[0]);
            std::process::exit(2);
        });
        // Default to each benchmark's smallest paper configuration (CG,
        // LU and IS require power-of-two worlds; BT squares; SW 2x3).
        let procs: usize = positional
            .get(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| id.paper_proc_counts()[0]);
        let class = match positional.get(2).map(String::as_str) {
            Some("S") | None => Class::S,
            Some("A") => Class::A,
            Some("B") => Class::B,
            Some(other) => {
                eprintln!("unknown class {other}");
                std::process::exit(2);
            }
        };
        vec![BenchmarkConfig::new(id, procs, class)]
    };

    let opts = ReplayOpts::with_shards(shards)
        .ttl(ttl)
        .mode(mode)
        .queue_cap(queue_cap)
        .backpressure(backpressure)
        .jobs(jobs)
        .engines(engines)
        .ensemble(ensemble)
        .ensemble_full(ensemble_full)
        .rebalance(rebalance)
        .skewed_jobs(rebalance)
        .telemetry(telemetry)
        .stats_every(stats_every);

    if (snapshot_path.is_some() || restore_path.is_some() || durable) && configs.len() != 1 {
        eprintln!(
            "--snapshot/--restore/--wal/--recover need exactly one configuration (e.g. `cg 8 A`)"
        );
        std::process::exit(2);
    }
    if let Some(path) = &snapshot_path {
        let (bytes, halted) = replay_to_snapshot(&configs[0], seed, &opts, None);
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote snapshot {path}: {halted} events ingested, {} bytes",
            bytes.len()
        );
        return;
    }
    let restore_bytes = restore_path.map(|path| {
        std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        })
    });

    let cap_label = queue_cap.map_or("off".to_string(), |c| c.to_string());
    if args.csv {
        println!(
            "config,events,streams,hit_rate,period_churn,evicted,shed,events_per_sec,\
             shards,mode,ttl,queue_cap,backpressure,jobs,engines,\
             observe_p50_ns,observe_p99_ns,queue_wait_p99_ns"
        );
    } else {
        let ttl_label = ttl.map_or("off".to_string(), |t| t.to_string());
        println!(
            "engine replay — {shards} shard(s), seed {seed}, mode {}, ttl {ttl_label}, \
             queue cap {cap_label}, backpressure {}, {jobs} job(s), {engines} engine(s)",
            mode.label(),
            backpressure.label()
        );
        println!(
            "{:<14} {:>9} {:>8} {:>9} {:>7} {:>8} {:>8} {:>14}",
            "config", "events", "streams", "hit_rate", "churn", "evicted", "shed", "events/sec"
        );
    }
    let mut json_entries = String::new();
    let mut accounting_bad = false;
    for config in &configs {
        let mut recovery = None;
        let r = if let Some(dir) = &wal_dir {
            replay_with_wal(config, seed, &opts, DurabilityConfig::new(dir))
        } else if let Some(dir) = &recover_dir {
            match replay_recover(config, seed, &opts, DurabilityConfig::new(dir)) {
                Ok((r, rec)) => {
                    recovery = Some(rec);
                    r
                }
                Err(e) => {
                    eprintln!("failed to recover from {dir}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            match &restore_bytes {
                Some(bytes) => {
                    replay_from_snapshot(config, seed, &opts, bytes).unwrap_or_else(|e| {
                        eprintln!("failed to restore snapshot: {e}");
                        std::process::exit(1);
                    })
                }
                None => replay(config, seed, &opts),
            }
        };
        // A restored/recovered run that loses or double-counts events
        // would still print a plausible table — audit the split so CI
        // catches it. `events_ingested` must be exactly the carried-in
        // count plus the live-replayed count, and (minus shed losses)
        // the whole trace must have landed.
        if restore_bytes.is_some() || recover_dir.is_some() {
            let ingested = r.total.events_ingested;
            if ingested != r.restored_events + r.replayed_events
                || ingested + r.total.shed_events != r.events as u64
            {
                eprintln!(
                    "accounting mismatch for {}: events_ingested {} != restored {} + \
                     replayed {} (trace {}, shed {})",
                    r.label,
                    ingested,
                    r.restored_events,
                    r.replayed_events,
                    r.events,
                    r.total.shed_events,
                );
                accounting_bad = true;
            }
        }
        if args.csv {
            println!(
                "{},{},{},{:.4},{},{},{},{:.0},{},{},{},{},{},{},{},{}",
                r.label,
                r.events,
                r.total.resident_streams,
                r.hit_rate(),
                r.total.period_churn,
                r.total.evicted,
                r.total.shed_events,
                r.events_per_sec,
                shards,
                mode.label(),
                ttl.map_or("off".to_string(), |t| t.to_string()),
                cap_label,
                backpressure.label(),
                jobs,
                engines,
                telemetry_csv_fields(r.telemetry.as_ref()),
            );
        } else {
            println!(
                "{:<14} {:>9} {:>8} {:>8.1}% {:>7} {:>8} {:>8} {:>14.0}",
                r.label,
                r.events,
                r.total.resident_streams,
                100.0 * r.hit_rate(),
                r.total.period_churn,
                r.total.evicted,
                r.total.shed_events,
                r.events_per_sec
            );
            if let Some(rec) = &recovery {
                println!(
                    "  [recover] {} events from the snapshot anchor + {} from the log tail, \
                     {} replayed live ({} snapshot(s) skipped{})",
                    rec.snapshot_events,
                    rec.wal_events,
                    r.events as u64 - rec.events(),
                    rec.snapshots_skipped,
                    if rec.wal_truncated {
                        ", torn log tail truncated"
                    } else {
                        ""
                    },
                );
            } else if r.restored_events > 0 {
                println!(
                    "  [restore] {} events carried in from the snapshot, {} replayed live",
                    r.restored_events, r.replayed_events
                );
            }
            if rebalance {
                // Counter-backed when telemetry is on; the skew shape
                // is a property of the workload either way.
                match r.telemetry.as_ref() {
                    Some(snap) => println!(
                        "  [rebalance] skewed {jobs}-job mix over {engines} member(s): \
                         {} epoch(s), {} move(s), {} skipped",
                        snap.counter("rebalance_epochs").unwrap_or(0),
                        snap.counter("rebalance_moves").unwrap_or(0),
                        snap.counter("rebalance_skipped").unwrap_or(0),
                    ),
                    None => println!(
                        "  [rebalance] skewed {jobs}-job mix over {engines} member(s) \
                         (enable telemetry for epoch/move counters)"
                    ),
                }
            }
            for iv in &r.intervals {
                let q = |name: &str, quantile: f64| {
                    iv.snapshot
                        .histogram(name)
                        .map_or(0, |h| h.quantile(quantile))
                };
                println!(
                    "  [stats] events {:>9}  ingest p50 {:>8}ns p99 {:>8}ns  \
                     queue-wait p99 {:>8}ns  flight {:>4}",
                    iv.events,
                    q("observe_batch_ns", 0.5),
                    q("observe_batch_ns", 0.99),
                    q("queue_wait_ns", 0.99),
                    iv.snapshot.flight().len(),
                );
            }
            // Ensemble replays: one row per roster member — its share
            // of served events (win rate) and its own scoring rate.
            for &(label, m) in &r.models {
                println!(
                    "  [model] {label:<10} win {:>5.1}%  hit {:>5.1}%  swaps-in {:>5}",
                    100.0 * r.model_win_rate(label),
                    100.0 * m.hit_rate().unwrap_or(0.0),
                    m.swaps_in,
                );
            }
            // Always printed — a single-tenant replay is job 0's row,
            // so the per-job and total views can be eyeballed against
            // each other in every run.
            for &(job, m) in &r.per_job {
                println!(
                    "  job {job:<4} {:>15} {:>8} {:>8.1}%",
                    m.events_ingested,
                    m.resident_streams,
                    100.0 * m.hit_rate().unwrap_or(0.0),
                );
            }
        }
        if telemetry_json.is_some() {
            let snap = r.telemetry.as_ref().expect("telemetry was enabled");
            if !json_entries.is_empty() {
                json_entries.push(',');
            }
            telemetry_json_entry(&mut json_entries, &r, snap);
        }
    }
    if let Some(path) = telemetry_json {
        let doc = format!("{{\"configs\":[{json_entries}]}}");
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if accounting_bad {
        std::process::exit(1);
    }
}
