//! Regenerates **Figure 4** of the paper: prediction accuracy of the
//! next five senders and message sizes on the **physical** communication
//! stream (arrival order, perturbed by network randomness). The paper
//! finds lower accuracy than Figure 3 — moderate degradation for BT,
//! severe for collective-dominated IS, little for LU/Sweep3D whose
//! streams have so few distinct values that reordering is often
//! invisible.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin fig4 [-- --csv --seed N]
//! ```

use mpp_core::eval::accuracy_table;
use mpp_experiments::{accuracy_row, run_all_paper_configs, CliArgs, Level, Target, HORIZONS};

fn main() {
    let args = CliArgs::parse();
    eprintln!(
        "fig4: running all 19 configurations (seed {}) ...",
        args.seed
    );
    let runs = run_all_paper_configs(args.seed);

    for target in [Target::Sender, Target::Size] {
        let rows: Vec<_> = runs
            .iter()
            .map(|r| accuracy_row(r, Level::Physical, target))
            .collect();
        let table = accuracy_table(&rows, HORIZONS);
        if args.csv {
            println!("# fig4 {} prediction", target.label());
            print!("{}", table.to_csv());
        } else {
            println!(
                "\nFigure 4 — prediction of the PHYSICAL MPI communication: {} prediction\n",
                target.label()
            );
            print!("{}", table.render());
        }
    }
    if !args.csv {
        println!("\npaper: \"the physical communication of MPI is predicted with less accuracy\"; IS is \"very hard\", LU and Sweep3D stay high.");
    }
}
