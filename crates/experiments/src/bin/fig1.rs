//! Regenerates **Figure 1** of the paper: the sender and message-size
//! streams observed at process 3 of BT with 9 processes, and the
//! periodicity the DPD detects in them (the paper reports period 18).
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin fig1 [-- --csv --seed N]
//! ```

use mpp_core::dpd::PeriodicityDetector;
use mpp_core::eval::TextTable;
use mpp_core::stream::exact_period;
use mpp_experiments::{experiment_dpd_config, CliArgs, TracedRun};
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};

/// How many stream positions the figure displays.
const SHOWN: usize = 72;

fn main() {
    let args = CliArgs::parse();
    eprintln!("fig1: running bt.9 (seed {}) ...", args.seed);
    let cfg = BenchmarkConfig::new(BenchId::Bt, 9, Class::A);
    let run = TracedRun::execute(cfg, args.seed);

    // The figure plots the *physical* receive stream ("observed senders
    // and msg sizes"); skip the startup collectives so the pure iteration
    // pattern shows, as the paper's excerpt does.
    let p2p_only: Vec<(u64, u64)> = run
        .physical
        .senders
        .iter()
        .zip(&run.physical.sizes)
        .zip(&run.physical.kinds)
        .filter(|&(_, k)| !k.is_collective())
        .map(|((&s, &b), _)| (s, b))
        .collect();
    let senders: Vec<u64> = p2p_only.iter().map(|&(s, _)| s).collect();
    let sizes: Vec<u64> = p2p_only.iter().map(|&(_, b)| b).collect();

    // Online detection, as the predictor would see it.
    let mut det_senders = PeriodicityDetector::new(experiment_dpd_config());
    for &s in &senders {
        det_senders.observe(s);
    }
    let mut det_sizes = PeriodicityDetector::new(experiment_dpd_config());
    for &b in &sizes {
        det_sizes.observe(b);
    }
    // Offline ground truth on a clean window (logical stream tail).
    let logical_senders: Vec<u64> = run
        .logical
        .senders
        .iter()
        .zip(&run.logical.kinds)
        .filter(|&(_, k)| !k.is_collective())
        .map(|(&s, _)| s)
        .collect();
    let tail = &logical_senders[logical_senders.len().saturating_sub(90)..];

    let mut t = TextTable::new(vec!["index", "sender", "msg size (bytes)"]);
    for i in 0..SHOWN.min(senders.len()) {
        t.push_row(vec![
            i.to_string(),
            senders[i].to_string(),
            sizes[i].to_string(),
        ]);
    }

    if args.csv {
        print!("{}", t.to_csv());
    } else {
        println!("Figure 1 — observed senders and msg sizes at process 3, NAS BT, 9 processes\n");
        print!("{}", t.render());
        println!();
        let truth = exact_period(tail);
        let describe = |p: Option<usize>| -> String {
            match (p, truth) {
                (Some(p), Some(t)) if p % t == 0 && p != t => {
                    format!("{p} (= {}x the fundamental {t}; under noise a multiple can have the cleanest window)", p / t)
                }
                (Some(p), _) => p.to_string(),
                (None, _) => "none".into(),
            }
        };
        println!(
            "detected periodicity (DPD, physical sender stream): {}",
            describe(det_senders.period())
        );
        println!(
            "detected periodicity (DPD, physical size stream):   {}",
            describe(det_sizes.period())
        );
        println!("ground-truth logical pattern length:                {truth:?}");
        println!("paper: \"the periodicity in the data stream is 18\"");
    }
}
