//! Seed-robustness of the Figure 3/4 results: repeats the accuracy
//! experiments across several simulation seeds and reports mean ± std of
//! the +1 accuracy, demonstrating that the reproduction's conclusions do
//! not depend on one lucky noise realisation.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin variance [-- --csv] [--seeds N]
//! ```

use mpp_core::eval::{SweepStats, TextTable};
use mpp_experiments::{accuracy_row, CliArgs, Level, Target, TracedRun};
use mpp_nasbench::paper_configs;

fn main() {
    let args = CliArgs::parse();
    let nseeds: usize = args
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let seeds: Vec<u64> = (0..nseeds as u64).map(|i| args.seed + i * 1001).collect();
    eprintln!("variance: {} seeds x 19 configs ...", seeds.len());

    let mut t = TextTable::new(vec![
        "config",
        "logical sender +1 (mean ± std %)",
        "physical sender +1 (mean ± std %)",
        "physical size +1 (mean ± std %)",
    ]);
    for cfg in paper_configs() {
        eprintln!("  {} ...", cfg.label());
        let mut log_s = Vec::new();
        let mut phy_s = Vec::new();
        let mut phy_b = Vec::new();
        for &seed in &seeds {
            let run = TracedRun::execute(cfg, seed);
            if let Some(a) = accuracy_row(&run, Level::Logical, Target::Sender).at(1) {
                log_s.push(a);
            }
            if let Some(a) = accuracy_row(&run, Level::Physical, Target::Sender).at(1) {
                phy_s.push(a);
            }
            if let Some(a) = accuracy_row(&run, Level::Physical, Target::Size).at(1) {
                phy_b.push(a);
            }
        }
        let fmt = |xs: &[f64]| SweepStats::of(xs).map(|s| s.pct()).unwrap_or_default();
        t.push_row(vec![cfg.label(), fmt(&log_s), fmt(&phy_s), fmt(&phy_b)]);
    }

    if args.csv {
        print!("{}", t.to_csv());
    } else {
        println!("Seed robustness of Figures 3/4 ({} seeds)\n", seeds.len());
        print!("{}", t.render());
        println!("\nlogical accuracy is seed-invariant by construction (the program");
        println!("order does not depend on network noise); physical accuracy varies");
        println!("with the noise realisation but stays in its qualitative band.");
    }
}
