//! CI validator for `engine_replay --telemetry-json` documents.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin telemetry_check -- /tmp/t.json
//! ```
//!
//! Reads the exported document with the crate's dependency-free JSON
//! parser and enforces the invariants the telemetry layer promises:
//!
//! * every config entry carries `metrics` and `telemetry` sections with
//!   the full counter set, and the telemetry counters equal the
//!   engine's own `ShardMetrics` rollup (the two are produced by
//!   independent code paths — drift means a wiring bug);
//! * the `resident_streams` gauge equals the metrics rollup under the
//!   sum-of-gauges contract;
//! * the core latency histograms are present, ingest was actually
//!   timed, and `observe_event_ns` timed exactly the events replayed
//!   live (`replayed_events`; events carried in from a `--restore`
//!   snapshot are counted by `restored_events` and never re-timed,
//!   while the counters above still cover the whole trace:
//!   `events_ingested == restored_events + replayed_events`);
//! * every histogram's quantiles are monotone (`p50 ≤ p90 ≤ p99 ≤
//!   max`) with `count`/`sum`/`mean`/`max` mutually consistent;
//! * every flight event is fully attributed (all fields present, kind
//!   is a known label);
//! * rebalance replays: the `rebalance_*` counters travel as a full
//!   set, moves imply closed epochs, and recorded `job_migrated`
//!   flight events never exceed the move counter.
//!
//! Prints one line per failure and exits non-zero on any; prints an
//! `OK` summary otherwise.

use mpp_experiments::json::{parse, Json};

/// Counters the engine injects from `ShardMetrics` into every
/// snapshot, cross-checked against the `metrics` section.
const COUNTERS: [&str; 9] = [
    "events_ingested",
    "predictions_served",
    "forecasts_served",
    "forecast_predictions",
    "hits",
    "misses",
    "abstentions",
    "period_churn",
    "evicted",
];

/// Histograms every telemetry-enabled replay must produce (queue-wait
/// and routing histograms are mode-dependent, so not required here).
const CORE_HISTOGRAMS: [&str; 3] = ["observe_batch_ns", "observe_event_ns", "forecast_ns"];

/// Flight-recorder kind labels the engine can emit.
const FLIGHT_KINDS: [&str; 9] = [
    "eviction",
    "backpressure_block",
    "backpressure_shed",
    "worker_gone",
    "period_churn",
    "epoch_rebound",
    "job_migrated",
    "champion_swapped",
    "wal_truncated",
];

struct Checker {
    failures: u32,
    checks: u32,
}

impl Checker {
    fn claim(&mut self, ok: bool, what: &str) {
        self.checks += 1;
        if !ok {
            self.failures += 1;
            eprintln!("FAIL: {what}");
        }
    }

    fn u64_at(&mut self, doc: &Json, path: &[&str], what: &str) -> u64 {
        match doc.path(path).and_then(Json::as_u64) {
            Some(v) => {
                self.checks += 1;
                v
            }
            None => {
                self.checks += 1;
                self.failures += 1;
                eprintln!("FAIL: {what}: missing or non-integer {}", path.join("."));
                0
            }
        }
    }

    fn check_histogram(&mut self, name: &str, h: &Json, ctx: &str) {
        let what = format!("{ctx} histogram {name}");
        let count = self.u64_at(h, &["count"], &what);
        let sum = self.u64_at(h, &["sum"], &what);
        let max = self.u64_at(h, &["max"], &what);
        let mean = self.u64_at(h, &["mean"], &what);
        let p50 = self.u64_at(h, &["p50"], &what);
        let p90 = self.u64_at(h, &["p90"], &what);
        let p99 = self.u64_at(h, &["p99"], &what);
        self.claim(
            p50 <= p90 && p90 <= p99 && p99 <= max,
            &format!("{what}: quantiles not monotone (p50 {p50} p90 {p90} p99 {p99} max {max})"),
        );
        self.claim(
            mean <= max,
            &format!("{what}: mean {mean} exceeds max {max}"),
        );
        if count == 0 {
            self.claim(
                sum == 0 && max == 0 && p99 == 0,
                &format!("{what}: empty histogram reports non-zero stats"),
            );
        } else {
            self.claim(
                sum >= max,
                &format!("{what}: sum {sum} below max {max} with count {count}"),
            );
        }
    }

    fn check_entry(&mut self, entry: &Json) {
        let label = entry
            .path(&["config"])
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        self.claim(
            entry.get("config").and_then(Json::as_str).is_some(),
            &format!("{label}: missing config label"),
        );
        self.u64_at(entry, &["events"], &label);

        // Counter cross-check: telemetry vs the engine's own rollup.
        for name in COUNTERS {
            let metric = self.u64_at(entry, &["metrics", name], &label);
            let counter = self.u64_at(entry, &["telemetry", "counters", name], &label);
            self.claim(
                metric == counter,
                &format!("{label}: counter {name} {counter} != metrics rollup {metric}"),
            );
        }
        let resident = self.u64_at(entry, &["metrics", "resident_streams"], &label);
        let gauge = self.u64_at(entry, &["telemetry", "gauges", "resident_streams"], &label);
        self.claim(
            resident == gauge,
            &format!("{label}: resident_streams gauge {gauge} != metrics rollup {resident}"),
        );

        // Histograms: required set present, all monotone/consistent.
        let hists = entry.path(&["telemetry", "histograms"]);
        let members = hists.and_then(Json::members).unwrap_or(&[]);
        self.claim(
            hists.is_some(),
            &format!("{label}: missing telemetry.histograms"),
        );
        for name in CORE_HISTOGRAMS {
            self.claim(
                members.iter().any(|(k, _)| k == name),
                &format!("{label}: missing histogram {name}"),
            );
        }
        for (name, h) in members {
            self.check_histogram(name, h, &label);
        }
        let ingested = self.u64_at(entry, &["metrics", "events_ingested"], &label);
        // Restored runs split the trace: `restored_events` were carried
        // in from the snapshot (counters cover them, latency histograms
        // don't), `replayed_events` were ingested live.
        let restored = self.u64_at(entry, &["restored_events"], &label);
        let replayed = self.u64_at(entry, &["replayed_events"], &label);
        self.claim(
            ingested == restored + replayed,
            &format!(
                "{label}: events_ingested {ingested} != restored {restored} + replayed {replayed}"
            ),
        );
        let batch_count = entry
            .path(&["telemetry", "histograms", "observe_batch_ns", "count"])
            .and_then(Json::as_u64)
            .unwrap_or(0);
        self.claim(
            replayed == 0 || batch_count > 0,
            &format!("{label}: events were replayed but no batch was timed"),
        );
        let event_count = entry
            .path(&["telemetry", "histograms", "observe_event_ns", "count"])
            .and_then(Json::as_u64)
            .unwrap_or(0);
        self.claim(
            event_count == replayed,
            &format!(
                "{label}: observe_event_ns timed {event_count} events, {replayed} replayed live"
            ),
        );

        // Ensemble replays: the model-mix counters partition the served
        // events — every event has exactly one champion, so the
        // per-member championship counters must sum to the engine's own
        // ingest count, and the swap counter must ride along.
        let counters = entry
            .path(&["telemetry", "counters"])
            .and_then(Json::members)
            .unwrap_or(&[]);
        let mix: Vec<(&String, u64)> = counters
            .iter()
            .filter(|(k, _)| k.starts_with("model_mix_"))
            .map(|(k, v)| (k, v.as_u64().unwrap_or(0)))
            .collect();
        if !mix.is_empty() {
            let served: u64 = mix.iter().map(|&(_, v)| v).sum();
            self.claim(
                served == ingested,
                &format!(
                    "{label}: model_mix_* counters sum to {served}, \
                     {ingested} events ingested"
                ),
            );
            self.claim(
                counters.iter().any(|(k, _)| k == "champion_swaps"),
                &format!("{label}: model-mix counters without champion_swaps"),
            );
        }

        // Rebalance replays: the three policy counters travel together
        // (the layer exposes all of them whenever a policy is
        // configured), and a move implies at least one closed epoch.
        let rebalance: Vec<(&String, u64)> = counters
            .iter()
            .filter(|(k, _)| k.starts_with("rebalance_"))
            .map(|(k, v)| (k, v.as_u64().unwrap_or(0)))
            .collect();
        let mut moves = 0u64;
        if !rebalance.is_empty() {
            for name in ["rebalance_epochs", "rebalance_moves", "rebalance_skipped"] {
                self.claim(
                    rebalance.iter().any(|&(k, _)| k == name),
                    &format!("{label}: partial rebalance counter set (missing {name})"),
                );
            }
            let epochs = self.u64_at(
                entry,
                &["telemetry", "counters", "rebalance_epochs"],
                &label,
            );
            moves = self.u64_at(entry, &["telemetry", "counters", "rebalance_moves"], &label);
            self.claim(
                moves == 0 || epochs > 0,
                &format!("{label}: {moves} rebalance moves but no closed epoch"),
            );
        }

        // Flight events: fully attributed, known kinds, stamp-sorted.
        let flight = entry
            .path(&["telemetry", "flight"])
            .and_then(Json::elements)
            .unwrap_or(&[]);
        let mut prev_at = 0u64;
        for (i, ev) in flight.iter().enumerate() {
            let what = format!("{label} flight[{i}]");
            let at = self.u64_at(ev, &["at"], &what);
            for field in ["member", "shard", "job", "a", "b"] {
                self.u64_at(ev, &[field], &what);
            }
            let kind = ev.get("kind").and_then(Json::as_str).unwrap_or("");
            self.claim(
                FLIGHT_KINDS.contains(&kind),
                &format!("{what}: unknown kind \"{kind}\""),
            );
            self.claim(
                at >= prev_at,
                &format!("{what}: stamps out of order ({at} after {prev_at})"),
            );
            prev_at = at;
        }
        if !rebalance.is_empty() {
            // Every recorded migration was ordered by the rebalancer
            // (the flight ring may have dropped old events, never
            // invented them).
            let migrated = flight
                .iter()
                .filter(|ev| ev.get("kind").and_then(Json::as_str) == Some("job_migrated"))
                .count() as u64;
            self.claim(
                migrated <= moves,
                &format!("{label}: {migrated} job_migrated flights exceed {moves} rebalance moves"),
            );
        }
    }
}

fn main() {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: telemetry_check FILE.json [FILE.json ...]");
        std::process::exit(2);
    }
    let mut checker = Checker {
        failures: 0,
        checks: 0,
    };
    let mut entries = 0usize;
    for path in paths.drain(..) {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let doc = match parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                std::process::exit(1);
            }
        };
        let configs = doc.get("configs").and_then(Json::elements);
        match configs {
            Some(cs) if !cs.is_empty() => {
                entries += cs.len();
                for entry in cs {
                    checker.check_entry(entry);
                }
            }
            _ => {
                eprintln!("FAIL: {path}: no configs in document");
                std::process::exit(1);
            }
        }
    }
    if checker.failures > 0 {
        eprintln!(
            "telemetry_check: {} of {} checks failed",
            checker.failures, checker.checks
        );
        std::process::exit(1);
    }
    println!(
        "telemetry_check: OK ({} checks across {} config entr{})",
        checker.checks,
        entries,
        if entries == 1 { "y" } else { "ies" }
    );
}
