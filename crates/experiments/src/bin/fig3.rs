//! Regenerates **Figure 3** of the paper: prediction accuracy of the
//! next five senders and message sizes on the **logical** communication
//! stream, for all 19 configurations. The paper reports > 90 % (mostly
//! ≈ 100 %), with IS.4 around 80 % because its stream is too short to
//! finish learning.
//!
//! ```text
//! cargo run -p mpp-experiments --release --bin fig3 [-- --csv --seed N]
//! ```

use mpp_core::eval::accuracy_table;
use mpp_experiments::{accuracy_row, run_all_paper_configs, CliArgs, Level, Target, HORIZONS};

fn main() {
    let args = CliArgs::parse();
    eprintln!(
        "fig3: running all 19 configurations (seed {}) ...",
        args.seed
    );
    let runs = run_all_paper_configs(args.seed);

    for target in [Target::Sender, Target::Size] {
        let rows: Vec<_> = runs
            .iter()
            .map(|r| accuracy_row(r, Level::Logical, target))
            .collect();
        let table = accuracy_table(&rows, HORIZONS);
        if args.csv {
            println!("# fig3 {} prediction", target.label());
            print!("{}", table.to_csv());
        } else {
            println!(
                "\nFigure 3 — prediction of the LOGICAL MPI communication: {} prediction\n",
                target.label()
            );
            print!("{}", table.render());
        }
    }
    if !args.csv {
        println!("\npaper: \"prediction rates are higher than 90 %, mostly close to 100 %; only in the NAS IS.4 we have around 80 %\"");
    }
}
