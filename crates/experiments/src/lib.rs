//! # mpp-experiments — regenerating the paper's tables and figures
//!
//! One binary per artefact:
//!
//! | binary        | paper artefact | content |
//! |---------------|----------------|---------|
//! | `table1`      | Table 1        | per-config message census of the traced rank |
//! | `fig1`        | Figure 1a/1b   | BT.9 process-3 sender & size streams + detected period |
//! | `fig2`        | Figure 2       | BT.4 process-3 logical vs physical sender streams |
//! | `fig3`        | Figure 3       | logical-stream prediction accuracy, +1…+5 |
//! | `fig4`        | Figure 4       | physical-stream prediction accuracy, +1…+5 |
//! | `scalability` | §2 proposals   | buffer memory / credit / protocol experiments |
//! | `ablation`    | §4.2 / §6      | predictor roster, window/tolerance/noise sweeps, set accuracy, torus topology |
//! | `variance`    | robustness     | Figures 3/4 repeated across seeds, mean ± std |
//! | `streams`     | (tool)         | logical-vs-physical stream inspector for any config |
//!
//! All binaries accept `--csv` to emit machine-readable output and
//! `--seed N` to change the simulation seed (defaults are fixed so runs
//! are reproducible).
//!
//! This library crate holds the shared machinery: running a benchmark
//! configuration once and extracting both stream views ([`TracedRun`]),
//! the standard predictor configuration ([`experiment_dpd_config`]), and
//! the accuracy sweep used by Figures 3 and 4.

pub mod json;
pub mod paper;
pub mod replay;

use mpp_core::dpd::{DpdConfig, DpdPredictor};
use mpp_core::eval::{EvalReport, StreamEvaluator};
use mpp_core::stream::Symbol;
use mpp_mpisim::trace::census;
use mpp_mpisim::{MessageStream, RankCensus, StreamFilter, Trace, WorldConfig};
use mpp_nasbench::{paper_configs, run_with_world, BenchmarkConfig};

/// Default simulation seed for all experiments (fixed ⇒ reproducible).
pub const DEFAULT_SEED: u64 = 2003;

/// Horizons evaluated in Figures 3/4 (`+1 … +5`).
pub const HORIZONS: usize = 5;

/// Which trace ordering feeds the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Program delivery order — §5.1.
    Logical,
    /// Arrival-time order — §5.2.
    Physical,
}

impl Level {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Level::Logical => "logical",
            Level::Physical => "physical",
        }
    }
}

/// Which stream attribute is being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The sending rank of the next messages.
    Sender,
    /// The size of the next messages.
    Size,
}

impl Target {
    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Target::Sender => "sender",
            Target::Size => "size",
        }
    }
}

/// The DPD configuration used by the paper-reproduction experiments.
///
/// * `max_lag = 256` covers the longest per-iteration pattern among the
///   19 configurations (LU.32's 189-message iteration).
/// * `window = 512` verifies roughly two full patterns.
/// * `tolerance = 0.40` lets the detector hold a period on physical
///   streams where borderline arrival races corrupt a bounded fraction
///   of the window. Clean lags always win the min-ratio selection, so a
///   generous tolerance does not disturb logical streams; streams with
///   no usable period at all (IS physical) stay above it and remain
///   unpredicted.
/// * `evidence_factor = 0.125` (with an 8-comparison floor) locks a
///   period after roughly one pattern instance plus a handful of
///   confirmations — the fast learning §4.2 attributes to the DPD. The
///   residual warm-up is what leaves short streams (IS.4) at ≈ 80 %.
pub fn experiment_dpd_config() -> DpdConfig {
    DpdConfig {
        window: 512,
        max_lag: 256,
        tolerance: 0.40,
        min_comparisons: 8,
        evidence_factor: 0.125,
        ..DpdConfig::default()
    }
}

/// One benchmark run with both stream views of the traced rank.
pub struct TracedRun {
    /// The configuration that produced this run.
    pub config: BenchmarkConfig,
    /// The rank whose streams are extracted.
    pub rank: usize,
    /// Logical-order stream (senders + sizes).
    pub logical: MessageStream,
    /// Physical-order stream.
    pub physical: MessageStream,
    /// Table-1 census of the traced rank (99 % coverage).
    pub census: RankCensus,
}

impl TracedRun {
    /// Runs `config` once on a jittered world and extracts the traced
    /// rank's streams.
    pub fn execute(config: BenchmarkConfig, seed: u64) -> Self {
        let wcfg = WorldConfig::new(config.procs).seed(seed);
        let trace = run_with_world(&config, wcfg);
        Self::from_trace(config, &trace)
    }

    /// Extracts the traced streams from an existing trace.
    pub fn from_trace(config: BenchmarkConfig, trace: &Trace) -> Self {
        let rank = config.traced_rank();
        TracedRun {
            config,
            rank,
            logical: trace.logical_stream(rank, StreamFilter::all()),
            physical: trace.physical_stream(rank, StreamFilter::all()),
            census: census(trace, rank, 0.99),
        }
    }

    /// The requested stream view/attribute as predictor symbols.
    pub fn stream(&self, level: Level, target: Target) -> &[Symbol] {
        let s = match level {
            Level::Logical => &self.logical,
            Level::Physical => &self.physical,
        };
        match target {
            Target::Sender => &s.senders,
            Target::Size => &s.sizes,
        }
    }
}

/// Evaluates the DPD at `+1 … +HORIZONS` on one stream, returning the
/// labelled accuracy row (the height of one bar group in Figures 3/4).
pub fn accuracy_row(run: &TracedRun, level: Level, target: Target) -> EvalReport {
    let stream = run.stream(level, target);
    let mut ev = StreamEvaluator::new(DpdPredictor::new(experiment_dpd_config()), HORIZONS);
    ev.feed_stream(stream);
    EvalReport::from_tracker(run.config.label(), ev.tracker())
}

/// Runs every paper configuration once (shared by `table1`, `fig3`,
/// `fig4`), reporting progress on stderr.
pub fn run_all_paper_configs(seed: u64) -> Vec<TracedRun> {
    paper_configs()
        .into_iter()
        .map(|cfg| {
            eprintln!("  running {} ...", cfg.label());
            TracedRun::execute(cfg, seed)
        })
        .collect()
}

/// Tiny argv helper shared by the binaries: `--csv` flag and
/// `--seed N` option.
pub struct CliArgs {
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Simulation seed.
    pub seed: u64,
    /// Positional arguments (subcommands).
    pub positional: Vec<String>,
}

impl CliArgs {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        let mut csv = false;
        let mut seed = DEFAULT_SEED;
        let mut positional = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--csv" => csv = true,
                "--seed" => {
                    seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer argument");
                        std::process::exit(2);
                    });
                }
                other => positional.push(other.to_string()),
            }
        }
        CliArgs {
            csv,
            seed,
            positional,
        }
    }

    /// Extracts a binary-specific `--name value` flag from the
    /// positional leftovers, returning its value. Keeps the shared
    /// parser ignorant of per-binary flags without each binary
    /// re-implementing a scan.
    pub fn take_flag(&mut self, name: &str) -> Option<String> {
        let i = self.positional.iter().position(|a| a == name)?;
        if i + 1 >= self.positional.len() {
            eprintln!("{name} needs an argument");
            std::process::exit(2);
        }
        let value = self.positional.remove(i + 1);
        self.positional.remove(i);
        Some(value)
    }

    /// Extracts a valueless `--name` switch from the positional
    /// leftovers, returning whether it was present.
    pub fn take_bool_flag(&mut self, name: &str) -> bool {
        match self.positional.iter().position(|a| a == name) {
            Some(i) => {
                self.positional.remove(i);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_nasbench::{BenchId, Class};

    #[test]
    fn traced_run_extracts_consistent_views() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let run = TracedRun::execute(cfg, 1);
        // Logical and physical views are permutations of each other.
        assert_eq!(run.logical.len(), run.physical.len());
        let mut a = run.logical.senders.clone();
        let mut b = run.physical.senders.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(run.rank, 2);
    }

    #[test]
    fn accuracy_row_has_five_horizons() {
        let cfg = BenchmarkConfig::new(BenchId::Bt, 4, Class::S);
        let run = TracedRun::execute(cfg, 1);
        let row = accuracy_row(&run, Level::Logical, Target::Sender);
        assert_eq!(row.accuracies.len(), HORIZONS);
        assert_eq!(row.label, "bt.4");
    }

    #[test]
    fn logical_bt_is_highly_predictable_even_at_class_s() {
        let cfg = BenchmarkConfig::new(BenchId::Bt, 9, Class::S);
        let run = TracedRun::execute(cfg, 1);
        let row = accuracy_row(&run, Level::Logical, Target::Sender);
        // 5 iterations × 18 messages: short stream, but the pattern locks
        // after ~2 iterations, so accuracy is already decent.
        assert!(row.at(1).unwrap() > 0.5, "{:?}", row.accuracies);
    }

    #[test]
    fn levels_and_targets_have_labels() {
        assert_eq!(Level::Logical.label(), "logical");
        assert_eq!(Target::Size.label(), "size");
    }
}
