//! A minimal, dependency-free JSON reader for the telemetry tooling.
//!
//! `mpp-telemetry` emits snapshots through a hand-rolled writer
//! (`TelemetrySnapshot::write_json`); this is the matching hand-rolled
//! reader, used by the `telemetry_check` binary to validate exported
//! documents in CI. It parses the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null) into an owned tree.
//!
//! Numbers are held as `f64`: integers round-trip exactly up to 2^53,
//! which comfortably covers every counter a smoke replay can produce.
//! This is a validation tool, not a general-purpose JSON library — on
//! malformed input it returns a position-stamped error string.

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (exact for integers below 2^53).
    Num(f64),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order (duplicate keys kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-free path of object keys.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The object members, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn elements(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(e) => Some(e),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer (rejects fractions,
    /// negatives, and magnitudes past 2^53 where `f64` loses exactness).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document (leading/trailing whitespace allowed;
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(elems));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in telemetry
                            // output (metric names are ASCII); map them
                            // to the replacement character rather than
                            // failing the whole document.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences are
                    // valid inside JSON strings unescaped).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5e1}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(1));
        let arr = doc.get("b").unwrap().elements().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(doc.path(&["c", "d"]).unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn as_u64_is_exact_or_nothing() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_a_real_telemetry_snapshot() {
        use mpp_engine::{Engine, EngineConfig, TelemetryConfig};
        use mpp_engine::{Observation, StreamKey, StreamKind};
        let mut engine =
            Engine::new(EngineConfig::with_shards(2).with_telemetry(TelemetryConfig::enabled()));
        let events: Vec<Observation> = (0..64)
            .map(|i| Observation::new(StreamKey::new(i % 4, StreamKind::Sender), u64::from(i % 3)))
            .collect();
        engine.observe_batch(&events);
        let snap = engine.telemetry().unwrap();
        let doc = parse(&snap.to_json()).expect("writer output must parse");
        assert_eq!(
            doc.path(&["counters", "events_ingested"]).unwrap().as_u64(),
            Some(64)
        );
        assert_eq!(
            doc.path(&["histograms", "observe_batch_ns", "count"])
                .and_then(Json::as_u64),
            Some(snap.histogram("observe_batch_ns").unwrap().count())
        );
    }
}
