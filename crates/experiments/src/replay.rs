//! Full-speed replay of NAS benchmark traces through the `mpp-engine`
//! serving layer — shared by the `engine_replay` binary and the
//! golden-trace regression tests (`tests/golden_replay.rs`) that pin
//! the paper-level hit rates against later engine refactors.

use mpp_core::dpd::DpdConfig;
use mpp_engine::{
    BackpressurePolicy, Engine, EngineConfig, Observation, PersistentEngine, ShardMetrics,
    StreamKey, StreamKind,
};
use mpp_nasbench::{run_config, BenchmarkConfig};
use std::time::Instant;

/// Events ingested per `observe_batch` call during replay.
pub const REPLAY_BATCH: usize = 8192;

/// Which engine execution mode serves the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Persistent shard workers behind channels (the default).
    Persistent,
    /// Scoped per-batch worker threads.
    Scoped,
}

impl EngineMode {
    /// Lower-case label for reports (matches the `BENCH_engine.json`
    /// `mode` field).
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Persistent => "persistent",
            EngineMode::Scoped => "scoped",
        }
    }
}

/// Engine-side options for one replay run.
#[derive(Debug, Clone)]
pub struct ReplayOpts {
    /// Shard count.
    pub shards: usize,
    /// Idle-stream TTL in engine-time events (`None` disables).
    pub ttl: Option<u64>,
    /// Execution mode serving the replay.
    pub mode: EngineMode,
    /// Persistent mode: bound on each shard's observe lane (`None`
    /// leaves lanes unbounded). Ignored in scoped mode.
    pub queue_cap: Option<usize>,
    /// Persistent mode: full-lane policy for bounded lanes.
    pub backpressure: BackpressurePolicy,
}

impl Default for ReplayOpts {
    fn default() -> Self {
        ReplayOpts {
            shards: 4,
            ttl: None,
            mode: EngineMode::Persistent,
            queue_cap: None,
            backpressure: BackpressurePolicy::Block,
        }
    }
}

impl ReplayOpts {
    /// Default options at `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        ReplayOpts {
            shards,
            ..ReplayOpts::default()
        }
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the idle-stream TTL.
    pub fn ttl(mut self, ttl: Option<u64>) -> Self {
        self.ttl = ttl;
        self
    }

    /// Bounds the persistent observe lanes.
    pub fn queue_cap(mut self, cap: Option<usize>) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the full-lane policy.
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            shards: self.shards,
            dpd: DpdConfig::default(),
            ttl: self.ttl,
            observe_queue_cap: self.queue_cap,
            backpressure: self.backpressure,
            ..EngineConfig::default()
        }
    }
}

/// Flattens a trace into engine observations, interleaving ranks in
/// logical-index order (round-robin-ish, like a serving layer ingesting
/// many ranks' deliveries concurrently).
pub fn trace_to_events(trace: &mpp_mpisim::Trace) -> Vec<Observation> {
    let mut out = Vec::new();
    let mut cursors: Vec<usize> = vec![0; trace.nprocs()];
    loop {
        let mut progressed = false;
        for rank in 0..trace.nprocs() {
            let events = trace.receives_of(rank);
            if cursors[rank] >= events.len() {
                continue;
            }
            let e = &events[cursors[rank]];
            cursors[rank] += 1;
            progressed = true;
            let r = rank as u32;
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Sender),
                e.src as u64,
            ));
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Size),
                e.bytes,
            ));
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Tag),
                u64::from(e.tag),
            ));
        }
        if !progressed {
            return out;
        }
    }
}

/// One replayed configuration's serving-layer summary.
pub struct ReplayReport {
    /// Configuration label (paper notation, e.g. `cg.8`).
    pub label: String,
    /// Events ingested (3 per traced delivery).
    pub events: usize,
    /// Aggregate engine counters after the replay.
    pub total: ShardMetrics,
    /// Per-shard counters after the replay.
    pub per_shard: Vec<ShardMetrics>,
    /// Ingest rate over the timed replay loop.
    pub events_per_sec: f64,
}

impl ReplayReport {
    /// Online `+1` hit rate (0 when nothing was scored).
    pub fn hit_rate(&self) -> f64 {
        self.total.hit_rate().unwrap_or(0.0)
    }
}

/// Replays pre-flattened `events` through a fresh engine per `opts`.
pub fn replay_events(events: &[Observation], opts: &ReplayOpts) -> (Vec<ShardMetrics>, f64) {
    let cfg = opts.engine_config();
    match opts.mode {
        EngineMode::Scoped => {
            let mut engine = Engine::new(cfg);
            let start = Instant::now();
            for chunk in events.chunks(REPLAY_BATCH) {
                engine.observe_batch(chunk);
            }
            let secs = start.elapsed().as_secs_f64();
            let shards = engine.metrics().shards;
            (shards, events.len() as f64 / secs.max(1e-12))
        }
        EngineMode::Persistent => {
            let engine = PersistentEngine::new(cfg);
            let client = engine.client();
            let start = Instant::now();
            for chunk in events.chunks(REPLAY_BATCH) {
                client.observe_batch(chunk);
            }
            // The metrics round-trip queues behind every submitted
            // batch, so it also closes the timing window fairly.
            let per_shard = client.metrics().shards;
            let secs = start.elapsed().as_secs_f64();
            (per_shard, events.len() as f64 / secs.max(1e-12))
        }
    }
}

/// Runs `config` once and replays its trace through the engine.
pub fn replay(config: &BenchmarkConfig, seed: u64, opts: &ReplayOpts) -> ReplayReport {
    let trace = run_config(config, seed);
    let events = trace_to_events(&trace);
    let (per_shard, events_per_sec) = replay_events(&events, opts);
    let mut total = ShardMetrics::default();
    for m in &per_shard {
        total.merge(m);
    }
    ReplayReport {
        label: config.label(),
        events: events.len(),
        total,
        per_shard,
        events_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_nasbench::{BenchId, Class};

    #[test]
    fn modes_agree_on_counters_for_a_small_config() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let a = replay(&cfg, 7, &ReplayOpts::with_shards(4));
        let b = replay(
            &cfg,
            7,
            &ReplayOpts::with_shards(4).mode(EngineMode::Scoped),
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.total.hits, b.total.hits);
        assert_eq!(a.total.misses, b.total.misses);
        assert_eq!(a.total.resident_streams, b.total.resident_streams);
        assert_eq!(a.per_shard.len(), 4);
    }

    #[test]
    fn bounded_block_replay_matches_unbounded_and_sheds_nothing() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let unbounded = replay(&cfg, 7, &ReplayOpts::with_shards(2));
        let bounded = replay(&cfg, 7, &ReplayOpts::with_shards(2).queue_cap(Some(2)));
        assert_eq!(bounded.total.hits, unbounded.total.hits);
        assert_eq!(bounded.total.misses, unbounded.total.misses);
        assert_eq!(
            bounded.total.events_ingested,
            unbounded.total.events_ingested
        );
        assert_eq!(bounded.total.shed_events, 0, "Block mode never sheds");
        assert!(bounded.total.queue_high_water <= 2, "lane within its cap");
    }

    #[test]
    fn ttl_replay_evicts_streams_that_go_quiet() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        // A tiny TTL forces evictions during replay (streams interleave,
        // so gaps larger than a few events are common).
        let r = replay(&cfg, 7, &ReplayOpts::with_shards(2).ttl(Some(4)));
        assert!(r.total.evicted > 0, "tiny TTL must evict: {:?}", r.total);
        let loose = replay(&cfg, 7, &ReplayOpts::with_shards(2).ttl(Some(1_000_000)));
        assert_eq!(loose.total.evicted, 0, "huge TTL evicts nothing");
        assert!(loose.hit_rate() >= r.hit_rate());
    }

    #[test]
    fn mode_and_policy_labels_match_bench_schema() {
        assert_eq!(EngineMode::Persistent.label(), "persistent");
        assert_eq!(EngineMode::Scoped.label(), "scoped");
        assert_eq!(BackpressurePolicy::Block.label(), "block");
        assert_eq!(BackpressurePolicy::Shed.label(), "shed");
    }
}
