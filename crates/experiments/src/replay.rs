//! Full-speed replay of NAS benchmark traces through the `mpp-engine`
//! serving layer — shared by the `engine_replay` binary and the
//! golden-trace regression tests (`tests/golden_replay.rs`) that pin
//! the paper-level hit rates against later engine refactors.

use mpp_core::dpd::DpdConfig;
use mpp_core::PredictorKind;
use mpp_engine::{
    BackpressurePolicy, DurabilityConfig, Engine, EngineConfig, EnsembleConfig, FederatedEngine,
    FederationConfig, JobId, JobMetrics, ModelStats, Observation, PersistentEngine,
    RebalanceConfig, RecoverError, RecoveryReport, ShardMetrics, SnapshotError, StreamKey,
    StreamKind, TelemetryConfig, TelemetrySnapshot,
};
use mpp_nasbench::{run_config, BenchmarkConfig};
use std::time::Instant;

/// Events ingested per `observe_batch` call during replay.
pub const REPLAY_BATCH: usize = 8192;

/// `--rebalance` replays close a rebalance epoch every this many
/// ingest batches, so even short traces see a few placement decisions
/// mid-run.
pub const REBALANCE_EVERY: usize = 2;

/// Which engine execution mode serves the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Persistent shard workers behind channels (the default).
    Persistent,
    /// Scoped per-batch worker threads.
    Scoped,
}

impl EngineMode {
    /// Lower-case label for reports (matches the `BENCH_engine.json`
    /// `mode` field).
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Persistent => "persistent",
            EngineMode::Scoped => "scoped",
        }
    }
}

/// Engine-side options for one replay run.
#[derive(Debug, Clone)]
pub struct ReplayOpts {
    /// Shard count (per federation member).
    pub shards: usize,
    /// Idle-stream TTL in engine-time events (`None` disables).
    pub ttl: Option<u64>,
    /// Execution mode serving the replay.
    pub mode: EngineMode,
    /// Persistent mode: bound on each shard's observe lane (`None`
    /// leaves lanes unbounded). Ignored in scoped mode.
    pub queue_cap: Option<usize>,
    /// Persistent mode: full-lane policy for bounded lanes.
    pub backpressure: BackpressurePolicy,
    /// Interleaved job copies of the trace to replay (job ids
    /// `0..jobs`); 1 is the single-tenant replay.
    pub jobs: usize,
    /// Persistent mode: federation member engines serving the replay;
    /// 1 wraps a single engine (bit-identical to direct use).
    pub engines: usize,
    /// Runs the champion/challenger ensemble
    /// ([`EnsembleConfig::standard`]) instead of the DPD-only default;
    /// the report gains per-predictor win-rate rows.
    pub ensemble: bool,
    /// Widens the ensemble to the full roster
    /// ([`EnsembleConfig::full`]); implies `ensemble`.
    pub ensemble_full: bool,
    /// Persistent mode with `engines > 1`: enables the load-aware
    /// rebalancer and closes a rebalance epoch every few ingest
    /// batches, letting hot jobs migrate between members mid-replay.
    /// Rollups stay bit-identical either way.
    pub rebalance: bool,
    /// Interleaves a *skewed* job mix instead of full copies: job `j`
    /// replays every `(j + 1)`-th event, so job 0 is hottest and the
    /// tail is cold — the fixed hot/cold mix the rebalancer feeds on.
    pub skewed_jobs: bool,
    /// Enables the engine telemetry layer (latency histograms, flight
    /// recorder); the final snapshot lands on the report.
    pub telemetry: bool,
    /// With telemetry enabled: capture a cumulative snapshot every `N`
    /// ingest batches ([`REPLAY_BATCH`] events each). The snapshot
    /// round-trips a query through every shard, so interval capture
    /// perturbs `events_per_sec` — leave it off for rate measurements.
    pub stats_every: Option<usize>,
}

impl Default for ReplayOpts {
    fn default() -> Self {
        ReplayOpts {
            shards: 4,
            ttl: None,
            mode: EngineMode::Persistent,
            queue_cap: None,
            backpressure: BackpressurePolicy::Block,
            jobs: 1,
            engines: 1,
            ensemble: false,
            ensemble_full: false,
            rebalance: false,
            skewed_jobs: false,
            telemetry: false,
            stats_every: None,
        }
    }
}

impl ReplayOpts {
    /// Default options at `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        ReplayOpts {
            shards,
            ..ReplayOpts::default()
        }
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the idle-stream TTL.
    pub fn ttl(mut self, ttl: Option<u64>) -> Self {
        self.ttl = ttl;
        self
    }

    /// Bounds the persistent observe lanes.
    pub fn queue_cap(mut self, cap: Option<usize>) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the full-lane policy.
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Sets the number of interleaved job copies.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the number of federation member engines.
    pub fn engines(mut self, engines: usize) -> Self {
        self.engines = engines;
        self
    }

    /// Enables or disables the standard challenger ensemble.
    pub fn ensemble(mut self, on: bool) -> Self {
        self.ensemble = on;
        self
    }

    /// Widens the ensemble to the full challenger roster (implies
    /// [`ensemble`](Self::ensemble)).
    pub fn ensemble_full(mut self, on: bool) -> Self {
        self.ensemble_full = on;
        self
    }

    /// Enables the load-aware rebalancer (persistent mode, `engines`
    /// > 1).
    pub fn rebalance(mut self, on: bool) -> Self {
        self.rebalance = on;
        self
    }

    /// Replays a skewed hot/cold job mix instead of full per-job
    /// copies.
    pub fn skewed_jobs(mut self, on: bool) -> Self {
        self.skewed_jobs = on;
        self
    }

    /// Enables or disables the telemetry layer.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Captures a cumulative telemetry snapshot every `n` batches
    /// (implies nothing unless telemetry is enabled).
    pub fn stats_every(mut self, n: Option<usize>) -> Self {
        self.stats_every = n;
        self
    }

    fn engine_config(&self) -> EngineConfig {
        let cfg = EngineConfig {
            shards: self.shards,
            dpd: DpdConfig::default(),
            ttl: self.ttl,
            observe_queue_cap: self.queue_cap,
            backpressure: self.backpressure,
            ensemble: if self.ensemble_full {
                EnsembleConfig::full()
            } else if self.ensemble {
                EnsembleConfig::standard()
            } else {
                EnsembleConfig::default()
            },
            ..EngineConfig::default()
        };
        if self.telemetry {
            cfg.with_telemetry(TelemetryConfig::enabled())
        } else {
            cfg
        }
    }
}

/// Flattens a trace into engine observations, interleaving ranks in
/// logical-index order (round-robin-ish, like a serving layer ingesting
/// many ranks' deliveries concurrently).
pub fn trace_to_events(trace: &mpp_mpisim::Trace) -> Vec<Observation> {
    let mut out = Vec::new();
    let mut cursors: Vec<usize> = vec![0; trace.nprocs()];
    loop {
        let mut progressed = false;
        for rank in 0..trace.nprocs() {
            let events = trace.receives_of(rank);
            if cursors[rank] >= events.len() {
                continue;
            }
            let e = &events[cursors[rank]];
            cursors[rank] += 1;
            progressed = true;
            let r = rank as u32;
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Sender),
                e.src as u64,
            ));
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Size),
                e.bytes,
            ));
            out.push(Observation::new(
                StreamKey::new(r, StreamKind::Tag),
                u64::from(e.tag),
            ));
        }
        if !progressed {
            return out;
        }
    }
}

/// One replayed configuration's serving-layer summary.
pub struct ReplayReport {
    /// Configuration label (paper notation, e.g. `cg.8`).
    pub label: String,
    /// Events ingested (3 per traced delivery, × job copies).
    pub events: usize,
    /// Events the engine carried in from a restored snapshot (0 for a
    /// cold replay). `restored + replayed == events`.
    pub restored_events: u64,
    /// Events this process actually submitted (`events` for a cold
    /// replay; the post-cut tail for a restored one).
    pub replayed_events: u64,
    /// Aggregate engine counters after the replay (all members).
    pub total: ShardMetrics,
    /// Per-shard counters after the replay (members concatenated in
    /// member order for federated runs).
    pub per_shard: Vec<ShardMetrics>,
    /// Per-job scoring rollups, ascending by job id.
    pub per_job: Vec<(JobId, JobMetrics)>,
    /// Per-predictor ensemble columns, in roster order (index 0 = the
    /// primary DPD): predictor label plus its scoring/championship
    /// counters. Empty for DPD-only replays.
    pub models: Vec<(&'static str, ModelStats)>,
    /// Ingest rate over the timed replay loop.
    pub events_per_sec: f64,
    /// Final telemetry snapshot (`None` unless `opts.telemetry`).
    pub telemetry: Option<TelemetrySnapshot>,
    /// Cumulative mid-replay snapshots taken every
    /// [`ReplayOpts::stats_every`] batches, in capture order.
    pub intervals: Vec<ReplayInterval>,
}

/// One mid-replay telemetry capture.
pub struct ReplayInterval {
    /// Events submitted when the snapshot was taken.
    pub events: usize,
    /// Cumulative telemetry at that point.
    pub snapshot: TelemetrySnapshot,
}

impl ReplayReport {
    /// Online `+1` hit rate (0 when nothing was scored).
    pub fn hit_rate(&self) -> f64 {
        self.total.hit_rate().unwrap_or(0.0)
    }

    /// One job's online `+1` hit rate (0 when nothing was scored).
    pub fn job_hit_rate(&self, job: JobId) -> f64 {
        self.per_job
            .iter()
            .find(|&&(j, _)| j == job)
            .and_then(|(_, m)| m.hit_rate())
            .unwrap_or(0.0)
    }

    /// One roster member's *win rate*: the share of all ingested events
    /// it served as the stream's champion (0 outside ensemble replays;
    /// the shares sum to 1 within one).
    pub fn model_win_rate(&self, label: &str) -> f64 {
        let total: u64 = self.models.iter().map(|(_, m)| m.champion_events).sum();
        if total == 0 {
            return 0.0;
        }
        self.models
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0.0, |(_, m)| m.champion_events as f64 / total as f64)
    }

    /// One roster member's own online `+1` hit rate across every event
    /// (scored whether or not it was champion; 0 outside ensemble
    /// replays).
    pub fn model_hit_rate(&self, label: &str) -> f64 {
        self.models
            .iter()
            .find(|(l, _)| *l == label)
            .and_then(|(_, m)| m.hit_rate())
            .unwrap_or(0.0)
    }
}

/// Display labels for an ensemble roster, in member order (index 0 =
/// the primary DPD).
pub fn roster_labels(ens: &EnsembleConfig) -> Vec<&'static str> {
    let mut out = Vec::with_capacity(ens.roster_len());
    out.push(PredictorKind::Dpd.label());
    out.extend(ens.challengers.iter().map(|k| k.label()));
    out
}

/// Re-keys `events` into `jobs` interleaved job copies: source event
/// `i` becomes events `i*jobs ..` for jobs `0..jobs`, so the engine
/// sees all tenants' identical streams arriving concurrently. Each
/// job's subsequence equals the original sequence, so per-job results
/// must match the single-tenant replay bit for bit (the federated
/// golden pin relies on this).
pub fn interleave_jobs(events: &[Observation], jobs: usize) -> Vec<Observation> {
    assert!(jobs > 0, "at least one job copy");
    if jobs == 1 {
        return events.to_vec();
    }
    let mut out = Vec::with_capacity(events.len() * jobs);
    for e in events {
        for j in 0..jobs {
            let key = StreamKey::for_job(j as JobId, e.key.rank, e.key.kind);
            out.push(Observation::new(key, e.value));
        }
    }
    out
}

/// Re-keys `events` into a *skewed* hot/cold job mix: job `j` replays
/// only every `(j + 1)`-th source event, so job 0 carries the full
/// stream, job 1 half of it, job 2 a third, and so on. Hash placement
/// ignores load, so a federation serving this mix starts hot on
/// whichever member drew job 0 — the workload the load-aware
/// rebalancer exists to fix. Each job's subsequence is still a
/// deterministic function of the trace, so skewed replays stay
/// reproducible and rebalancing must not change any rollup.
pub fn interleave_jobs_skewed(events: &[Observation], jobs: usize) -> Vec<Observation> {
    assert!(jobs > 0, "at least one job copy");
    if jobs == 1 {
        return events.to_vec();
    }
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        for j in 0..jobs {
            if i % (j + 1) == 0 {
                let key = StreamKey::for_job(j as JobId, e.key.rank, e.key.kind);
                out.push(Observation::new(key, e.value));
            }
        }
    }
    out
}

/// Engine-side outcome of one replay: per-shard counters, per-job
/// rollups, ingest rate, and (telemetry-enabled runs) the final plus
/// mid-replay snapshots.
pub struct ReplayOutcome {
    /// Per-shard counters, members concatenated in member order.
    pub per_shard: Vec<ShardMetrics>,
    /// Per-job scoring rollups, ascending by job id.
    pub per_job: Vec<(JobId, JobMetrics)>,
    /// Labelled per-predictor rollup (empty for DPD-only replays).
    pub models: Vec<(&'static str, ModelStats)>,
    /// Ingest rate over the timed replay loop.
    pub events_per_sec: f64,
    /// Final telemetry snapshot (`None` unless `opts.telemetry`).
    pub telemetry: Option<TelemetrySnapshot>,
    /// Cumulative mid-replay snapshots (`opts.stats_every`).
    pub intervals: Vec<ReplayInterval>,
}

/// Replays pre-flattened `events` through a fresh engine (or
/// federation) per `opts`. The persistent mode always serves through a
/// [`FederatedEngine`] — single-member for `engines == 1`, which is
/// bit-identical to driving the engine directly (pinned by the golden
/// replays and `mpp-engine/tests/federation.rs`).
pub fn replay_events(events: &[Observation], opts: &ReplayOpts) -> ReplayOutcome {
    assert!(opts.engines > 0, "at least one engine");
    let cfg = opts.engine_config();
    let labels = roster_labels(&cfg.ensemble);
    let every = opts.stats_every.filter(|_| opts.telemetry);
    let mut intervals = Vec::new();
    match opts.mode {
        EngineMode::Scoped => {
            assert!(
                opts.engines == 1,
                "federation (--engines > 1) is a persistent-mode feature"
            );
            assert!(
                !opts.rebalance,
                "rebalancing is a persistent-mode federation feature"
            );
            let mut engine = Engine::new(cfg);
            let start = Instant::now();
            let mut submitted = 0usize;
            for (i, chunk) in events.chunks(REPLAY_BATCH).enumerate() {
                engine.observe_batch(chunk);
                submitted += chunk.len();
                if every.is_some_and(|n| (i + 1) % n == 0) {
                    if let Some(snapshot) = engine.telemetry() {
                        intervals.push(ReplayInterval {
                            events: submitted,
                            snapshot,
                        });
                    }
                }
            }
            let secs = start.elapsed().as_secs_f64();
            let per_job = engine.job_metrics();
            let models = labels.iter().copied().zip(engine.model_stats()).collect();
            let telemetry = opts.telemetry.then(|| engine.telemetry()).flatten();
            let shards = engine.metrics().shards;
            ReplayOutcome {
                per_shard: shards,
                per_job,
                models,
                events_per_sec: events.len() as f64 / secs.max(1e-12),
                telemetry,
                intervals,
            }
        }
        EngineMode::Persistent => {
            let fed = FederatedEngine::new(FederationConfig {
                members: opts.engines,
                member: cfg,
                adaptive: None,
                rebalance: opts.rebalance.then_some(RebalanceConfig {
                    // Replay epochs are short (a few batches), so use a
                    // tighter trigger than the production default: act
                    // on 10% skew and let a job move again after one
                    // quiet epoch.
                    headroom: 10,
                    max_moves_per_epoch: 2,
                    min_dwell_epochs: 1,
                }),
            });
            let client = fed.client();
            let start = Instant::now();
            let mut submitted = 0usize;
            for (i, chunk) in events.chunks(REPLAY_BATCH).enumerate() {
                client.observe_batch(chunk);
                submitted += chunk.len();
                if opts.rebalance && (i + 1) % REBALANCE_EVERY == 0 {
                    // Closing the epoch quiesces the moved jobs, so the
                    // migration cut lands between fully-ingested
                    // batches and rollups stay bit-identical.
                    fed.rebalance_epoch();
                }
                if every.is_some_and(|n| (i + 1) % n == 0) {
                    // The snapshot query queues behind the submitted
                    // batches, so each interval reflects fully-ingested
                    // prefixes only.
                    if let Some(snapshot) = client.telemetry() {
                        intervals.push(ReplayInterval {
                            events: submitted,
                            snapshot,
                        });
                    }
                }
            }
            if opts.rebalance {
                // Always close at least one epoch — short traces may
                // never hit the mid-run cadence.
                fed.rebalance_epoch();
            }
            // The metrics round-trip queues behind every submitted
            // batch, so it also closes the timing window fairly.
            let per_shard: Vec<ShardMetrics> = client
                .metrics()
                .members
                .into_iter()
                .flat_map(|m| m.shards)
                .collect();
            let secs = start.elapsed().as_secs_f64();
            let per_job = client.job_metrics();
            let models = labels.iter().copied().zip(client.model_stats()).collect();
            let telemetry = opts.telemetry.then(|| client.telemetry()).flatten();
            ReplayOutcome {
                per_shard,
                per_job,
                models,
                events_per_sec: events.len() as f64 / secs.max(1e-12),
                telemetry,
                intervals,
            }
        }
    }
}

/// Runs `config` once and replays its trace (interleaved into
/// `opts.jobs` job copies — skewed hot/cold when `opts.skewed_jobs`)
/// through the engine.
pub fn replay(config: &BenchmarkConfig, seed: u64, opts: &ReplayOpts) -> ReplayReport {
    let trace = run_config(config, seed);
    let base = trace_to_events(&trace);
    let events = if opts.skewed_jobs {
        interleave_jobs_skewed(&base, opts.jobs)
    } else {
        interleave_jobs(&base, opts.jobs)
    };
    let outcome = replay_events(&events, opts);
    report_of(config, events.len(), 0, outcome)
}

fn report_of(
    config: &BenchmarkConfig,
    events: usize,
    restored: u64,
    outcome: ReplayOutcome,
) -> ReplayReport {
    let mut total = ShardMetrics::default();
    for m in &outcome.per_shard {
        total.merge(m);
    }
    ReplayReport {
        label: config.label(),
        events,
        restored_events: restored,
        // Derived from what the engine actually ingested, not the trace
        // length: under `shed` backpressure some events never land.
        replayed_events: total.events_ingested - restored,
        total,
        per_shard: outcome.per_shard,
        per_job: outcome.per_job,
        models: outcome.models,
        events_per_sec: outcome.events_per_sec,
        telemetry: outcome.telemetry,
        intervals: outcome.intervals,
    }
}

/// The cut point `--snapshot` halts at: the midpoint, rounded down to
/// a [`REPLAY_BATCH`] boundary so the head replays whole batches. For
/// traces shorter than two batches the raw midpoint is used — a
/// rounded cut would be 0 and the snapshot would capture nothing.
pub fn snapshot_cut(events: usize) -> usize {
    let aligned = events / 2 / REPLAY_BATCH * REPLAY_BATCH;
    if aligned == 0 {
        events / 2
    } else {
        aligned
    }
}

/// Runs `config`, replays the first `halt_at` events (default: the
/// [`snapshot_cut`] midpoint; clamped to the trace), and returns the
/// engine's versioned snapshot bytes plus the halt point. Restricted
/// to one engine: a snapshot captures one engine's state (`jobs > 1`
/// is fine — tenants ride inside it).
pub fn replay_to_snapshot(
    config: &BenchmarkConfig,
    seed: u64,
    opts: &ReplayOpts,
    halt_at: Option<usize>,
) -> (Vec<u8>, usize) {
    assert!(
        opts.engines == 1,
        "snapshot replay captures a single engine (--engines 1)"
    );
    let trace = run_config(config, seed);
    let events = interleave_jobs(&trace_to_events(&trace), opts.jobs);
    let halt = halt_at
        .unwrap_or_else(|| snapshot_cut(events.len()))
        .min(events.len());
    let cfg = opts.engine_config();
    let bytes = match opts.mode {
        EngineMode::Scoped => {
            let mut engine = Engine::new(cfg);
            for chunk in events[..halt].chunks(REPLAY_BATCH) {
                engine.observe_batch(chunk);
            }
            engine.snapshot()
        }
        EngineMode::Persistent => {
            let engine = PersistentEngine::new(cfg);
            let client = engine.client();
            for chunk in events[..halt].chunks(REPLAY_BATCH) {
                client.observe_batch(chunk);
            }
            client.snapshot()
        }
    };
    (bytes, halt)
}

/// Runs `config`, restores the engine from `bytes`, and replays
/// exactly the events the snapshot had not yet ingested (the skip
/// count is read back from the restored engine's own
/// `events_ingested`, so resumption is deterministic — no sidecar
/// cursor file). The report's `restored_events` / `replayed_events`
/// split lets validators reason about which counters predate this
/// process (`telemetry_check` pins `events_ingested == restored +
/// replayed` and that the ingest histograms timed only the replayed
/// tail).
pub fn replay_from_snapshot(
    config: &BenchmarkConfig,
    seed: u64,
    opts: &ReplayOpts,
    bytes: &[u8],
) -> Result<ReplayReport, SnapshotError> {
    assert!(
        opts.engines == 1,
        "snapshot replay restores a single engine (--engines 1)"
    );
    let trace = run_config(config, seed);
    let events = interleave_jobs(&trace_to_events(&trace), opts.jobs);
    let cfg = opts.engine_config();
    let labels = roster_labels(&cfg.ensemble);
    let (restored, outcome) = match opts.mode {
        EngineMode::Scoped => {
            let mut engine = Engine::restore(cfg, bytes)?;
            let restored = (engine.metrics_total().events_ingested as usize).min(events.len());
            let start = Instant::now();
            for chunk in events[restored..].chunks(REPLAY_BATCH) {
                engine.observe_batch(chunk);
            }
            let secs = start.elapsed().as_secs_f64();
            let per_job = engine.job_metrics();
            let models = labels.iter().copied().zip(engine.model_stats()).collect();
            let telemetry = opts.telemetry.then(|| engine.telemetry()).flatten();
            let outcome = ReplayOutcome {
                per_shard: engine.metrics().shards,
                per_job,
                models,
                events_per_sec: (events.len() - restored) as f64 / secs.max(1e-12),
                telemetry,
                intervals: Vec::new(),
            };
            (restored, outcome)
        }
        EngineMode::Persistent => {
            let engine = PersistentEngine::restore(cfg, bytes)?;
            let client = engine.client();
            let restored = (client.metrics_total().events_ingested as usize).min(events.len());
            let start = Instant::now();
            for chunk in events[restored..].chunks(REPLAY_BATCH) {
                client.observe_batch(chunk);
            }
            // The metrics round-trip queues behind every submitted
            // batch, closing the timing window fairly (as in
            // `replay_events`).
            let per_shard: Vec<ShardMetrics> = client.metrics().shards;
            let secs = start.elapsed().as_secs_f64();
            let per_job = client.job_metrics();
            let models = labels.iter().copied().zip(client.model_stats()).collect();
            let telemetry = opts.telemetry.then(|| client.telemetry()).flatten();
            let outcome = ReplayOutcome {
                per_shard,
                per_job,
                models,
                events_per_sec: (events.len() - restored) as f64 / secs.max(1e-12),
                telemetry,
                intervals: Vec::new(),
            };
            (restored, outcome)
        }
    };
    Ok(report_of(config, events.len(), restored as u64, outcome))
}

/// Runs `config` and replays it through a *durable* persistent engine:
/// every ingested batch is appended to the observation log under
/// `durability.dir`, and a snapshot checkpoint is written at the
/// [`snapshot_cut`] midpoint batch boundary (so recovery exercises
/// both the snapshot anchor and the log tail past it). The log is
/// fsynced before returning, making the whole replay crash-durable —
/// and making a `kill -9` at *any* earlier moment recoverable via
/// [`replay_recover`] (the CI kill-9 smoke does exactly that).
/// Restricted to one persistent engine: the log records one engine's
/// observation stream.
pub fn replay_with_wal(
    config: &BenchmarkConfig,
    seed: u64,
    opts: &ReplayOpts,
    durability: DurabilityConfig,
) -> ReplayReport {
    assert!(
        opts.engines == 1 && opts.mode == EngineMode::Persistent,
        "the observation log records a single persistent engine \
         (--engines 1, persistent mode)"
    );
    let trace = run_config(config, seed);
    let events = interleave_jobs(&trace_to_events(&trace), opts.jobs);
    let cfg = opts.engine_config().with_durability(durability);
    let labels = roster_labels(&cfg.ensemble);
    let engine = PersistentEngine::new(cfg);
    let client = engine.client();
    let cut = snapshot_cut(events.len());
    let start = Instant::now();
    let mut submitted = 0usize;
    for chunk in events.chunks(REPLAY_BATCH) {
        client.observe_batch(chunk);
        submitted += chunk.len();
        if submitted.saturating_sub(chunk.len()) < cut && submitted >= cut {
            client
                .checkpoint()
                .expect("midpoint checkpoint")
                .expect("durability is configured");
        }
    }
    // Durability barrier: whatever the flush policy, everything
    // submitted above is on stable storage when this returns.
    engine.sync_wal();
    let per_shard = client.metrics().shards;
    let secs = start.elapsed().as_secs_f64();
    let per_job = client.job_metrics();
    let models = labels.iter().copied().zip(client.model_stats()).collect();
    let telemetry = opts.telemetry.then(|| client.telemetry()).flatten();
    let outcome = ReplayOutcome {
        per_shard,
        per_job,
        models,
        events_per_sec: events.len() as f64 / secs.max(1e-12),
        telemetry,
        intervals: Vec::new(),
    };
    report_of(config, events.len(), 0, outcome)
}

/// Recovers an engine from `durability.dir` (newest valid snapshot +
/// observation-log tail) and replays exactly the trace events the
/// recovered state had not yet ingested — the crash-recovery analogue
/// of [`replay_from_snapshot`], with the skip count read from the
/// recovered engine's own clock. The report's accounting follows the
/// durability contract: `restored_events` counts only what the
/// snapshot anchor carried in; events replayed from the log tail went
/// through the live observe path and count as `replayed_events`
/// (exactly like the trace remainder), so `telemetry_check`'s
/// `events_ingested == restored + replayed` invariant holds across a
/// crash.
pub fn replay_recover(
    config: &BenchmarkConfig,
    seed: u64,
    opts: &ReplayOpts,
    durability: DurabilityConfig,
) -> Result<(ReplayReport, RecoveryReport), RecoverError> {
    assert!(
        opts.engines == 1 && opts.mode == EngineMode::Persistent,
        "recovery rebuilds a single persistent engine \
         (--engines 1, persistent mode)"
    );
    let trace = run_config(config, seed);
    let events = interleave_jobs(&trace_to_events(&trace), opts.jobs);
    let cfg = opts.engine_config().with_durability(durability);
    let labels = roster_labels(&cfg.ensemble);
    let (engine, recovery) = PersistentEngine::recover(cfg)?;
    let client = engine.client();
    let skip = (recovery.events() as usize).min(events.len());
    let start = Instant::now();
    for chunk in events[skip..].chunks(REPLAY_BATCH) {
        client.observe_batch(chunk);
    }
    engine.sync_wal();
    let per_shard = client.metrics().shards;
    let secs = start.elapsed().as_secs_f64();
    let per_job = client.job_metrics();
    let models = labels.iter().copied().zip(client.model_stats()).collect();
    let telemetry = opts.telemetry.then(|| client.telemetry()).flatten();
    let outcome = ReplayOutcome {
        per_shard,
        per_job,
        models,
        events_per_sec: (events.len() - skip) as f64 / secs.max(1e-12),
        telemetry,
        intervals: Vec::new(),
    };
    Ok((
        report_of(config, events.len(), recovery.snapshot_events, outcome),
        recovery,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_nasbench::{BenchId, Class};

    #[test]
    fn modes_agree_on_counters_for_a_small_config() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let a = replay(&cfg, 7, &ReplayOpts::with_shards(4));
        let b = replay(
            &cfg,
            7,
            &ReplayOpts::with_shards(4).mode(EngineMode::Scoped),
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.total.hits, b.total.hits);
        assert_eq!(a.total.misses, b.total.misses);
        assert_eq!(a.total.resident_streams, b.total.resident_streams);
        assert_eq!(a.per_shard.len(), 4);
    }

    #[test]
    fn bounded_block_replay_matches_unbounded_and_sheds_nothing() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let unbounded = replay(&cfg, 7, &ReplayOpts::with_shards(2));
        let bounded = replay(&cfg, 7, &ReplayOpts::with_shards(2).queue_cap(Some(2)));
        assert_eq!(bounded.total.hits, unbounded.total.hits);
        assert_eq!(bounded.total.misses, unbounded.total.misses);
        assert_eq!(
            bounded.total.events_ingested,
            unbounded.total.events_ingested
        );
        assert_eq!(bounded.total.shed_events, 0, "Block mode never sheds");
        assert!(bounded.total.queue_high_water <= 2, "lane within its cap");
    }

    #[test]
    fn ttl_replay_evicts_streams_that_go_quiet() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        // A tiny TTL forces evictions during replay (streams interleave,
        // so gaps larger than a few events are common).
        let r = replay(&cfg, 7, &ReplayOpts::with_shards(2).ttl(Some(4)));
        assert!(r.total.evicted > 0, "tiny TTL must evict: {:?}", r.total);
        let loose = replay(&cfg, 7, &ReplayOpts::with_shards(2).ttl(Some(1_000_000)));
        assert_eq!(loose.total.evicted, 0, "huge TTL evicts nothing");
        assert!(loose.hit_rate() >= r.hit_rate());
    }

    #[test]
    fn interleave_preserves_each_jobs_subsequence() {
        let events = vec![
            Observation::new(StreamKey::new(0, StreamKind::Sender), 1),
            Observation::new(StreamKey::new(0, StreamKind::Size), 64),
            Observation::new(StreamKey::new(1, StreamKind::Sender), 2),
        ];
        assert_eq!(interleave_jobs(&events, 1), events);
        let tripled = interleave_jobs(&events, 3);
        assert_eq!(tripled.len(), 9);
        for job in 0..3u32 {
            let sub: Vec<_> = tripled.iter().filter(|o| o.key.job == job).collect();
            assert_eq!(sub.len(), events.len());
            for (got, want) in sub.iter().zip(&events) {
                assert_eq!(got.key.rank, want.key.rank);
                assert_eq!(got.key.kind, want.key.kind);
                assert_eq!(got.value, want.value);
            }
        }
    }

    #[test]
    fn federated_multi_job_replay_matches_single_tenant_per_job() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let solo = replay(&cfg, 7, &ReplayOpts::with_shards(2));
        let fed = replay(&cfg, 7, &ReplayOpts::with_shards(2).jobs(3).engines(2));
        assert_eq!(fed.events, 3 * solo.events);
        assert_eq!(fed.per_job.len(), 3);
        for &(job, m) in &fed.per_job {
            assert_eq!(m.events_ingested, solo.total.events_ingested, "job {job}");
            assert_eq!(m.hits, solo.total.hits, "job {job} hits");
            assert_eq!(m.misses, solo.total.misses, "job {job} misses");
            assert_eq!(
                m.resident_streams, solo.total.resident_streams,
                "job {job} streams"
            );
        }
        // Members concatenate in the per-shard view: 2 engines x 2 shards.
        assert_eq!(fed.per_shard.len(), 4);
        // The scoped engine replays multi-job workloads too (one engine,
        // namespaced keys) with the same per-job rollups.
        let scoped = replay(
            &cfg,
            7,
            &ReplayOpts::with_shards(2).jobs(3).mode(EngineMode::Scoped),
        );
        assert_eq!(scoped.per_job, fed.per_job);
    }

    #[test]
    fn skewed_interleave_builds_the_hot_cold_mix() {
        let events = vec![
            Observation::new(StreamKey::new(0, StreamKind::Sender), 1),
            Observation::new(StreamKey::new(0, StreamKind::Size), 64),
            Observation::new(StreamKey::new(1, StreamKind::Sender), 2),
            Observation::new(StreamKey::new(1, StreamKind::Size), 32),
        ];
        assert_eq!(interleave_jobs_skewed(&events, 1), events);
        let mix = interleave_jobs_skewed(&events, 3);
        // Job 0 gets all 4 events, job 1 every 2nd, job 2 every 3rd.
        for (job, want) in [(0u32, 4usize), (1, 2), (2, 2)] {
            let sub: Vec<_> = mix.iter().filter(|o| o.key.job == job).collect();
            assert_eq!(sub.len(), want, "job {job}");
            // Each job's stream is a subsequence of the original.
            let mut cursor = events.iter();
            for got in &sub {
                assert!(cursor.any(|want| {
                    want.key.rank == got.key.rank
                        && want.key.kind == got.key.kind
                        && want.value == got.value
                }));
            }
        }
    }

    #[test]
    fn rebalanced_replay_is_bit_identical_to_rebalancing_disabled() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let base = ReplayOpts::with_shards(2)
            .jobs(4)
            .engines(2)
            .skewed_jobs(true)
            .telemetry(true);
        let off = replay(&cfg, 7, &base.clone());
        let on = replay(&cfg, 7, &base.rebalance(true));
        // The whole point: live rebalancing must be invisible in every
        // scoring rollup (±0), per job and in total.
        assert_eq!(on.per_job.len(), off.per_job.len());
        for ((job, got), (_, want)) in on.per_job.iter().zip(&off.per_job) {
            assert_eq!(got.events_ingested, want.events_ingested, "job {job}");
            assert_eq!(got.hits, want.hits, "job {job} hits");
            assert_eq!(got.misses, want.misses, "job {job} misses");
            assert_eq!(got.abstentions, want.abstentions, "job {job}");
        }
        assert_eq!(on.total.hits, off.total.hits);
        assert_eq!(on.total.misses, off.total.misses);
        assert_eq!(on.total.events_ingested, off.total.events_ingested);
        // And the rebalancer actually ran: epochs closed, counters on
        // the wire.
        let snap = on.telemetry.as_ref().expect("telemetry enabled");
        assert!(snap.counter("rebalance_epochs").unwrap_or(0) > 0);
        assert!(snap.counter("rebalance_moves").is_some());
        assert!(snap.counter("rebalance_skipped").is_some());
        // The disabled run exposes no rebalance counters at all.
        let off_snap = off.telemetry.as_ref().expect("telemetry enabled");
        assert_eq!(off_snap.counter("rebalance_epochs"), None);
    }

    #[test]
    fn telemetry_replay_snapshots_mirror_the_counter_rollup() {
        let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
        let plain = replay(&cfg, 7, &ReplayOpts::with_shards(2));
        assert!(plain.telemetry.is_none(), "telemetry is opt-in");
        let opts = ReplayOpts::with_shards(2)
            .telemetry(true)
            .stats_every(Some(1));
        let r = replay(&cfg, 7, &opts);
        // Telemetry must not change what the engine computes.
        assert_eq!(r.total.hits, plain.total.hits);
        assert_eq!(r.total.misses, plain.total.misses);
        let snap = r.telemetry.as_ref().expect("telemetry enabled");
        assert_eq!(
            snap.counter("events_ingested"),
            Some(r.total.events_ingested)
        );
        assert_eq!(
            snap.gauge("resident_streams"),
            Some(r.total.resident_streams)
        );
        let h = snap.histogram("observe_batch_ns").expect("batch latency");
        assert!(h.count() > 0);
        // One cumulative capture per batch, ending at the full event
        // count; each capture's ingested prefix is complete.
        assert_eq!(r.intervals.len(), r.events.div_ceil(REPLAY_BATCH));
        let last = r.intervals.last().unwrap();
        assert_eq!(last.events, r.events);
        assert_eq!(
            last.snapshot.counter("events_ingested"),
            Some(r.total.events_ingested)
        );
        // The scoped mode snapshots the same counters.
        let s = replay(&cfg, 7, &opts.clone().mode(EngineMode::Scoped));
        assert_eq!(
            s.telemetry.unwrap().counter("events_ingested"),
            Some(r.total.events_ingested)
        );
    }

    #[test]
    fn mode_and_policy_labels_match_bench_schema() {
        assert_eq!(EngineMode::Persistent.label(), "persistent");
        assert_eq!(EngineMode::Scoped.label(), "scoped");
        assert_eq!(BackpressurePolicy::Block.label(), "block");
        assert_eq!(BackpressurePolicy::Shed.label(), "shed");
    }
}
