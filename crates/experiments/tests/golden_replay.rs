//! Golden-trace regression pins for the engine replay path.
//!
//! CHANGES.md records class-A CG/BT replay hit rates of 97.8–100 %
//! (the paper-level accuracy the serving layer must preserve). These
//! tests pin the exact rates, measured at the default seed, with a
//! ±0.1 pt tolerance, so a later engine refactor that silently
//! degrades accuracy fails loudly instead of shipping. The traces are
//! deterministic functions of the seed (`tests/determinism.rs`), so
//! within-tolerance drift can only come from engine-side changes.

use mpp_engine::{SnapshotError, SNAPSHOT_VERSION};
use mpp_experiments::replay::{
    replay, replay_from_snapshot, replay_to_snapshot, EngineMode, ReplayOpts,
};
use mpp_experiments::DEFAULT_SEED;
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};

/// ±0.1 percentage point, as a rate.
const TOLERANCE: f64 = 0.001;

/// Golden online `+1` hit rates (default seed 2003, default detector):
/// measured on the seed engine and re-confirmed on the persistent
/// engine (bit-identical by `tests/persistence.rs`).
const GOLDEN: [(BenchId, usize, f64); 2] = [(BenchId::Cg, 8, 0.9982), (BenchId::Bt, 9, 0.9995)];

fn check(opts: &ReplayOpts, label: &str) {
    for (id, procs, want) in GOLDEN {
        let cfg = BenchmarkConfig::new(id, procs, Class::A);
        let r = replay(&cfg, DEFAULT_SEED, opts);
        let got = r.hit_rate();
        assert!(
            (got - want).abs() <= TOLERANCE,
            "{} ({label}) hit rate drifted: got {got:.4}, pinned {want:.4} ±{TOLERANCE:.4}",
            r.label,
        );
        // The CHANGES.md envelope for the whole class-A roster.
        assert!(
            (0.978..=1.0).contains(&got),
            "{} left the paper-level accuracy envelope: {got:.4}",
            r.label
        );
    }
}

#[test]
fn class_a_hit_rates_stay_pinned_persistent() {
    check(&ReplayOpts::with_shards(4), "persistent");
}

#[test]
fn class_a_hit_rates_stay_pinned_scoped() {
    check(
        &ReplayOpts::with_shards(4).mode(EngineMode::Scoped),
        "scoped",
    );
}

/// The backpressure acceptance pin: bounded `Block`-mode lanes must
/// leave the golden class-A hit rates exactly where the unbounded
/// engine has them (±0.1 pt by the shared tolerance; bit-identical by
/// `mpp-engine/tests/backpressure.rs`).
#[test]
fn class_a_hit_rates_stay_pinned_bounded_block() {
    check(
        &ReplayOpts::with_shards(4).queue_cap(Some(4)),
        "bounded-block",
    );
}

/// The federation acceptance pin: 2 engines × 2 interleaved job copies
/// of each class-A config must leave every job's hit rate exactly where
/// the single-engine, single-job run has it (±0.1 pt by the shared
/// tolerance; per-job bit-identity by `mpp-engine/tests/federation.rs`).
#[test]
fn class_a_hit_rates_stay_pinned_federated_per_job() {
    const JOBS: usize = 2;
    let opts = ReplayOpts::with_shards(2).jobs(JOBS).engines(2);
    for (id, procs, want) in GOLDEN {
        let cfg = BenchmarkConfig::new(id, procs, Class::A);
        let r = replay(&cfg, DEFAULT_SEED, &opts);
        assert_eq!(r.per_job.len(), JOBS, "one rollup per job copy");
        for job in 0..JOBS as u32 {
            let got = r.job_hit_rate(job);
            assert!(
                (got - want).abs() <= TOLERANCE,
                "{} job {job} (federated 2x2) hit rate drifted: got {got:.4}, \
                 pinned {want:.4} ±{TOLERANCE:.4}",
                r.label,
            );
        }
        // All job copies replay the same trace: bit-identical rollups.
        assert!(
            r.per_job.windows(2).all(|w| w[0].1 == w[1].1),
            "{}: identical job copies must produce identical rollups",
            r.label
        );
    }
}

/// The snapshot acceptance pin: replaying each golden class-A config
/// to its midpoint, snapshotting, restoring, and replaying the rest is
/// not merely within tolerance of the uninterrupted run — the scoring
/// counters are *exactly* equal (±0 pt), in both execution modes. The
/// report's `restored`/`replayed` split must cover the whole trace.
#[test]
fn class_a_snapshot_restore_continue_is_exact() {
    for mode in [EngineMode::Persistent, EngineMode::Scoped] {
        let opts = ReplayOpts::with_shards(4).mode(mode);
        for (id, procs, want) in GOLDEN {
            let cfg = BenchmarkConfig::new(id, procs, Class::A);
            let full = replay(&cfg, DEFAULT_SEED, &opts);
            let (bytes, cut) = replay_to_snapshot(&cfg, DEFAULT_SEED, &opts, None);
            assert!(cut > 0, "{}: midpoint cut captured nothing", full.label);
            let r = replay_from_snapshot(&cfg, DEFAULT_SEED, &opts, &bytes)
                .expect("a snapshot this replay just wrote must restore");
            assert_eq!(r.restored_events, cut as u64, "{}", full.label);
            assert_eq!(
                r.restored_events + r.replayed_events,
                full.events as u64,
                "{}",
                full.label
            );
            let (f, t) = (&full.total, &r.total);
            assert_eq!(
                (
                    f.events_ingested,
                    f.hits,
                    f.misses,
                    f.abstentions,
                    f.period_churn
                ),
                (
                    t.events_ingested,
                    t.hits,
                    t.misses,
                    t.abstentions,
                    t.period_churn
                ),
                "{} ({}): restore-and-continue must score identically",
                full.label,
                mode.label(),
            );
            let got = r.hit_rate();
            assert!(
                (got - want).abs() <= TOLERANCE,
                "{} (restored) hit rate drifted: got {got:.4}, pinned {want:.4}",
                full.label,
            );
        }
    }
}

/// A snapshot stamped with a future format version is refused at the
/// replay level with the typed error, not misparsed into a bad engine.
#[test]
fn restoring_a_future_version_snapshot_fails_typed() {
    let cfg = BenchmarkConfig::new(BenchId::Cg, 4, Class::S);
    let opts = ReplayOpts::with_shards(2);
    let (mut bytes, _) = replay_to_snapshot(&cfg, DEFAULT_SEED, &opts, None);
    bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    match replay_from_snapshot(&cfg, DEFAULT_SEED, &opts, &bytes) {
        Err(SnapshotError::VersionMismatch { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        Err(other) => panic!("expected VersionMismatch, got {other:?}"),
        Ok(_) => panic!("a future-version snapshot must not restore"),
    }
}

/// Golden per-predictor *win rates* (share of ingested events each
/// roster member served as champion) for ensemble replays of the two
/// golden class-A configs plus the two synthetic workloads, default
/// seed, standard roster. Champion selection is a deterministic
/// per-stream function of the event sequence, so these are invariant
/// across shard counts and execution modes (asserted below); drift
/// within a mode means the selection rule itself changed.
type WinRatePins = [(&'static str, f64); 4];

const GOLDEN_WIN_RATES: [(BenchId, usize, WinRatePins); 4] = [
    (
        BenchId::Cg,
        8,
        [
            ("dpd", 0.2242),
            ("last-value", 0.4483),
            ("stride", 0.0),
            ("markov1", 0.3275),
        ],
    ),
    (
        BenchId::Bt,
        9,
        [
            ("dpd", 0.9201),
            ("last-value", 0.0537),
            ("stride", 0.0),
            ("markov1", 0.0262),
        ],
    ),
    (
        BenchId::Ring,
        8,
        [
            ("dpd", 0.6738),
            ("last-value", 0.0116),
            ("stride", 0.0),
            ("markov1", 0.3147),
        ],
    ),
    (
        BenchId::PingPong,
        8,
        [
            ("dpd", 0.9667),
            ("last-value", 0.0333),
            ("stride", 0.0),
            ("markov1", 0.0),
        ],
    ),
];

/// The ensemble acceptance pin: per-predictor championship shares on
/// the golden configs and the synthetic ring / ping-pong workloads
/// stay where they were measured (±0.1 pt), the shares partition the
/// event stream, and the scoped engine agrees with the persistent one
/// bit for bit.
#[test]
fn ensemble_win_rates_stay_pinned() {
    for (id, procs, pins) in GOLDEN_WIN_RATES {
        let cfg = BenchmarkConfig::new(id, procs, Class::A);
        let r = replay(
            &cfg,
            DEFAULT_SEED,
            &ReplayOpts::with_shards(4).ensemble(true),
        );
        let s = replay(
            &cfg,
            DEFAULT_SEED,
            &ReplayOpts::with_shards(2)
                .ensemble(true)
                .mode(EngineMode::Scoped),
        );
        assert_eq!(
            r.models.len(),
            4,
            "{}: dpd + 3 standard challengers",
            r.label
        );
        for (label, want) in pins {
            let got = r.model_win_rate(label);
            assert!(
                (got - want).abs() <= TOLERANCE,
                "{} {label} win rate drifted: got {got:.4}, pinned {want:.4} ±{TOLERANCE:.4}",
                r.label,
            );
            assert_eq!(
                r.models.iter().find(|(l, _)| *l == label).unwrap().1,
                s.models.iter().find(|(l, _)| *l == label).unwrap().1,
                "{} {label}: per-model counters differ between execution modes",
                r.label,
            );
        }
        // Every event has exactly one champion: the shares partition
        // the stream.
        let served: u64 = r.models.iter().map(|(_, m)| m.champion_events).sum();
        assert_eq!(
            served, r.total.events_ingested,
            "{}: championship shares must partition the events",
            r.label
        );
    }
}

/// Golden win rates for the *full* challenger roster
/// ([`EnsembleConfig::full`]: standard + frequency, single-cycle, tag,
/// hybrid) on one NAS and one synthetic golden config, default seed.
/// Measured on the full roster — the shares differ from the
/// standard-roster pins above because the added challengers win
/// championships of their own (frequency and the hybrid committee take
/// real shares; cycle and tag stay benched on these traces).
type FullWinRatePins = [(&'static str, f64); 8];

const GOLDEN_FULL_WIN_RATES: [(BenchId, usize, FullWinRatePins); 2] = [
    (
        BenchId::Cg,
        8,
        [
            ("dpd", 0.2183),
            ("last-value", 0.1637),
            ("stride", 0.0),
            ("markov1", 0.2456),
            ("frequency", 0.1384),
            ("single-cycle", 0.0),
            ("tag", 0.0),
            ("hybrid", 0.2339),
        ],
    ),
    (
        BenchId::Ring,
        8,
        [
            ("dpd", 0.6738),
            ("last-value", 0.0053),
            ("stride", 0.0),
            ("markov1", 0.1584),
            ("frequency", 0.1510),
            ("single-cycle", 0.0114),
            ("tag", 0.0),
            ("hybrid", 0.0),
        ],
    ),
];

/// The full-roster acceptance pin: widening the ensemble must yield
/// exactly these championship shares (±0.1 pt), which still partition
/// the event stream, with the scoped engine bit-identical to the
/// persistent one.
#[test]
fn full_roster_win_rates_stay_pinned() {
    for (id, procs, pins) in GOLDEN_FULL_WIN_RATES {
        let cfg = BenchmarkConfig::new(id, procs, Class::A);
        let r = replay(
            &cfg,
            DEFAULT_SEED,
            &ReplayOpts::with_shards(4).ensemble_full(true),
        );
        let s = replay(
            &cfg,
            DEFAULT_SEED,
            &ReplayOpts::with_shards(2)
                .ensemble_full(true)
                .mode(EngineMode::Scoped),
        );
        assert_eq!(
            r.models.len(),
            8,
            "{}: dpd + 7 full-roster challengers",
            r.label
        );
        for (label, want) in pins {
            let got = r.model_win_rate(label);
            assert!(
                (got - want).abs() <= TOLERANCE,
                "{} {label} full-roster win rate drifted: got {got:.4}, \
                 pinned {want:.4} ±{TOLERANCE:.4}",
                r.label,
            );
            assert_eq!(
                r.models.iter().find(|(l, _)| *l == label).unwrap().1,
                s.models.iter().find(|(l, _)| *l == label).unwrap().1,
                "{} {label}: per-model counters differ between execution modes",
                r.label,
            );
        }
        let served: u64 = r.models.iter().map(|(_, m)| m.champion_events).sum();
        assert_eq!(
            served, r.total.events_ingested,
            "{}: championship shares must partition the events",
            r.label
        );
    }
}
