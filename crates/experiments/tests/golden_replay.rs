//! Golden-trace regression pins for the engine replay path.
//!
//! CHANGES.md records class-A CG/BT replay hit rates of 97.8–100 %
//! (the paper-level accuracy the serving layer must preserve). These
//! tests pin the exact rates, measured at the default seed, with a
//! ±0.1 pt tolerance, so a later engine refactor that silently
//! degrades accuracy fails loudly instead of shipping. The traces are
//! deterministic functions of the seed (`tests/determinism.rs`), so
//! within-tolerance drift can only come from engine-side changes.

use mpp_experiments::replay::{replay, EngineMode};
use mpp_experiments::DEFAULT_SEED;
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};

/// ±0.1 percentage point, as a rate.
const TOLERANCE: f64 = 0.001;

/// Golden online `+1` hit rates (default seed 2003, default detector):
/// measured on the seed engine and re-confirmed on the persistent
/// engine (bit-identical by `tests/persistence.rs`).
const GOLDEN: [(BenchId, usize, f64); 2] = [(BenchId::Cg, 8, 0.9982), (BenchId::Bt, 9, 0.9995)];

fn check(mode: EngineMode) {
    for (id, procs, want) in GOLDEN {
        let cfg = BenchmarkConfig::new(id, procs, Class::A);
        let r = replay(&cfg, DEFAULT_SEED, 4, None, mode);
        let got = r.hit_rate();
        assert!(
            (got - want).abs() <= TOLERANCE,
            "{} ({}) hit rate drifted: got {:.4}, pinned {:.4} ±{:.4}",
            r.label,
            mode.label(),
            got,
            want,
            TOLERANCE
        );
        // The CHANGES.md envelope for the whole class-A roster.
        assert!(
            (0.978..=1.0).contains(&got),
            "{} left the paper-level accuracy envelope: {got:.4}",
            r.label
        );
    }
}

#[test]
fn class_a_hit_rates_stay_pinned_persistent() {
    check(EngineMode::Persistent);
}

#[test]
fn class_a_hit_rates_stay_pinned_scoped() {
    check(EngineMode::Scoped);
}
