//! Differential proptests for the log-linear histogram: quantiles must
//! stay within the documented error bound of an exact sorted-vec
//! reference, merges must be associative and equal to recording the
//! union into one histogram, and the top bucket must saturate.

use mpp_telemetry::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS, LINEAR_MAX, SATURATION,
};
use proptest::prelude::*;

/// Decodes a (shift, seed) pair into a value spanning ~11 orders of
/// magnitude (0 .. 2^36), well past the 5 the issue asks for.
fn decode(shift: u32, seed: u64) -> u64 {
    seed % (1u64 << (shift % 37)).max(1)
}

/// The documented bound: exact in the linear range, otherwise within
/// half a bucket width (≤ value/64) of the true quantile.
fn assert_within_bound(got: u64, exact: u64, q: f64) {
    if exact < LINEAR_MAX {
        assert_eq!(got, exact, "linear range must be exact (q={q})");
    } else {
        let tol = exact / 64;
        let diff = got.abs_diff(exact);
        assert!(
            diff <= tol,
            "q={q}: got {got}, exact {exact}, diff {diff} > tol {tol}"
        );
    }
}

proptest! {
    #[test]
    fn quantiles_match_sorted_vec_reference(
        raw in prop::collection::vec((0u32..37, 0u64..u64::MAX), 1..300),
    ) {
        let values: Vec<u64> = raw.iter().map(|&(s, v)| decode(s, v)).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());

        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            assert_within_bound(snap.quantile(q), sorted[rank], q);
        }
    }

    #[test]
    fn merge_is_associative_and_equals_union(
        a in prop::collection::vec((0u32..37, 0u64..u64::MAX), 0..60),
        b in prop::collection::vec((0u32..37, 0u64..u64::MAX), 0..60),
        c in prop::collection::vec((0u32..37, 0u64..u64::MAX), 0..60),
    ) {
        let decode_all = |raw: &[(u32, u64)]| -> Vec<u64> {
            raw.iter().map(|&(s, v)| decode(s, v)).collect()
        };
        let (va, vb, vc) = (decode_all(&a), decode_all(&b), decode_all(&c));

        let fill = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };

        // Reference: every sample recorded into a single histogram.
        let union = fill(&[va.clone(), vb.clone(), vc.clone()].concat()).snapshot();

        // (a + b) + c via live-histogram merge.
        let left = fill(&va);
        left.merge(&fill(&vb));
        left.merge(&fill(&vc));
        prop_assert_eq!(left.snapshot(), union.clone());

        // a + (b + c) via snapshot merge.
        let mut right: HistogramSnapshot = fill(&vb).snapshot();
        right.merge(&fill(&vc).snapshot());
        let mut right_total = fill(&va).snapshot();
        right_total.merge(&right);
        prop_assert_eq!(right_total, union);
    }

    #[test]
    fn top_bucket_saturates(
        over in prop::collection::vec(SATURATION..u64::MAX, 1..40),
        under in prop::collection::vec(0u64..SATURATION, 0..40),
    ) {
        let h = Histogram::new();
        for &v in over.iter().chain(under.iter()) {
            h.record(v);
        }
        let snap = h.snapshot();
        // Every saturating value lands in the top bucket...
        let under_top = under.iter().filter(|&&v| bucket_index(v) == BUCKETS - 1).count();
        prop_assert_eq!(
            snap.buckets()[BUCKETS - 1],
            (over.len() + under_top) as u64
        );
        // ...the exact max survives outside the buckets...
        let true_max = over.iter().chain(under.iter()).max().copied().unwrap();
        prop_assert_eq!(snap.max(), true_max);
        // ...and the p100 readout is pinned to the top bucket, not the
        // (unrepresentable) raw value.
        let (lower, width) = bucket_bounds(BUCKETS - 1);
        let p100 = snap.quantile(1.0);
        prop_assert!(p100 >= lower && p100 < lower + width);
    }
}
