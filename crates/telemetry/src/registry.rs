//! A registry of named metrics with lock-free recording handles.
//!
//! Registration (naming a metric) takes a short mutex hold; recording
//! through the returned [`Counter`], [`Gauge`], and
//! [`std::sync::Arc<Histogram>`] handles is entirely lock-free and
//! allocation-free. Registering the same name twice returns a handle to
//! the same underlying metric, so shards and clients can rendezvous on
//! well-known names.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::snapshot::TelemetrySnapshot;

/// A monotone counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A point-in-time level (resident streams, queue depth, ...).
/// Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raises the level to at least `v` (high-water tracking).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

/// Named counters, gauges, and histograms with lock-free recording.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &g.counters.len())
            .field("gauges", &g.gauges.len())
            .field("histograms", &g.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock().unwrap();
        if let Some((_, c)) = g.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        g.counters.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock().unwrap();
        if let Some((_, x)) = g.gauges.iter().find(|(n, _)| n == name) {
            return x.clone();
        }
        let x = Gauge::default();
        g.gauges.push((name.to_string(), x.clone()));
        x
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.lock().unwrap();
        if let Some((_, h)) = g.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        g.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let g = self.inner.lock().unwrap();
        let mut snap = TelemetrySnapshot::default();
        for (name, c) in &g.counters {
            snap.add_counter(name, c.get());
        }
        for (name, x) in &g.gauges {
            snap.add_gauge(name, x.get());
        }
        for (name, h) in &g.histograms {
            snap.merge_histogram(name, h.snapshot());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_metric() {
        let r = Registry::new();
        r.counter("x").add(3);
        r.counter("x").inc();
        assert_eq!(r.counter("x").get(), 4);
        r.gauge("g").set(9);
        r.gauge("g").raise(4); // lower than current -> no change
        assert_eq!(r.gauge("g").get(), 9);
        r.histogram("h").record(5);
        assert_eq!(r.histogram("h").snapshot().count(), 1);
    }

    #[test]
    fn snapshot_carries_all_metrics() {
        let r = Registry::new();
        r.counter("c").add(2);
        r.gauge("g").set(7);
        r.histogram("h").record(100);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(2));
        assert_eq!(s.gauge("g"), Some(7));
        assert_eq!(s.histogram("h").map(|h| h.count()), Some(1));
        assert_eq!(s.counter("missing"), None);
    }
}
