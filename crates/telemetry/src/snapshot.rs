//! Exportable telemetry snapshots.
//!
//! A [`TelemetrySnapshot`] is an owned, mergeable bag of named metrics
//! plus the retained flight-recorder events. Merging follows fixed
//! per-class rules:
//!
//! * **counters** are monotone — merge sums them;
//! * **gauges** are levels — merge *also sums them* (the sum-of-gauges
//!   contract: "total resident streams across shards" is the meaningful
//!   engine-level number; a high-water mark must be exported as a
//!   counter-free max elsewhere, not as a gauge here);
//! * **histograms** merge bucket-wise, so a merged snapshot is exactly
//!   the histogram of the union of the samples;
//! * **flight events** concatenate and re-sort by engine-time stamp.
//!
//! Two serde-free writers are provided: a stable JSON document
//! ([`TelemetrySnapshot::write_json`], keys sorted, quantiles
//! pre-computed) and a Prometheus-style text exposition
//! ([`TelemetrySnapshot::write_prometheus`], `mpp_`-prefixed, summary
//! quantiles).

use std::collections::BTreeMap;

use crate::flight::FlightEvent;
use crate::hist::HistogramSnapshot;

/// An owned, mergeable, exportable snapshot of engine telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
    flight: Vec<FlightEvent>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `name` (creating it at 0).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Adds `v` to gauge `name` (sum-of-gauges; see module docs).
    pub fn add_gauge(&mut self, name: &str, v: u64) {
        *self.gauges.entry(name.to_string()).or_insert(0) += v;
    }

    /// Folds `h` into histogram `name` (creating it empty).
    pub fn merge_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(&h);
    }

    /// Appends one flight event.
    pub fn push_flight(&mut self, ev: FlightEvent) {
        self.flight.push(ev);
    }

    /// Appends a dumped flight ring.
    pub fn extend_flight(&mut self, evs: impl IntoIterator<Item = FlightEvent>) {
        self.flight.extend(evs);
    }

    /// Re-sorts the flight log by engine-time stamp — call after a
    /// series of [`TelemetrySnapshot::extend_flight`] appends from
    /// independently-recorded rings ([`TelemetrySnapshot::merge`] sorts
    /// on its own).
    pub fn sort_flight(&mut self) {
        self.flight.sort_by_key(|e| e.at);
    }

    /// Stamps every flight event with `member` — used by federation
    /// layers to attribute a member engine's snapshot before merging it
    /// into the federation total.
    pub fn set_flight_member(&mut self, member: u32) {
        for ev in &mut self.flight {
            ev.member = member;
        }
    }

    /// Counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// All histograms, name-sorted.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// The merged flight events, engine-time order.
    pub fn flight(&self) -> &[FlightEvent] {
        &self.flight
    }

    /// True when the snapshot holds no metrics and no events.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.flight.is_empty()
    }

    /// Folds `other` into `self` under the per-class merge rules
    /// (counters sum, gauges sum, histograms merge bucket-wise, flight
    /// events interleave by stamp).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (n, v) in &other.counters {
            self.add_counter(n, *v);
        }
        for (n, v) in &other.gauges {
            self.add_gauge(n, *v);
        }
        for (n, h) in &other.histograms {
            self.merge_histogram(n, h.clone());
        }
        self.flight.extend_from_slice(&other.flight);
        self.flight.sort_by_key(|e| e.at);
    }

    /// Serializes the snapshot as a stable JSON document (sorted keys,
    /// quantiles pre-computed, no external dependencies).
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"counters\":{");
        write_map(out, &self.counters);
        out.push_str("},\"gauges\":{");
        write_map(out, &self.gauges);
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_string(out, name);
            out.push(':');
            write_hist_json(out, h);
        }
        out.push_str("},\"flight\":[");
        for (i, ev) in self.flight.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_flight_json(out, ev);
        }
        out.push_str("]}");
    }

    /// [`write_json`](Self::write_json) into a fresh `String`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        self.write_json(&mut s);
        s
    }

    /// Serializes the snapshot as Prometheus-style text exposition:
    /// counters and gauges as `mpp_<name>`, histograms as summaries
    /// with `quantile` labels plus `_sum`/`_count`/`_max`.
    pub fn write_prometheus(&self, out: &mut String) {
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE mpp_{name} counter\nmpp_{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE mpp_{name} gauge\nmpp_{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE mpp_{name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "mpp_{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("mpp_{name}_sum {}\n", h.sum()));
            out.push_str(&format!("mpp_{name}_count {}\n", h.count()));
            out.push_str(&format!("mpp_{name}_max {}\n", h.max()));
        }
    }

    /// [`write_prometheus`](Self::write_prometheus) into a fresh
    /// `String`.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(1024);
        self.write_prometheus(&mut s);
        s
    }
}

fn write_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (name, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        write_json_string(out, name);
        out.push(':');
        out.push_str(&v.to_string());
    }
}

fn write_hist_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count(),
        h.sum(),
        h.max(),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
    ));
}

fn write_flight_json(out: &mut String, ev: &FlightEvent) {
    out.push_str(&format!(
        "{{\"at\":{},\"kind\":\"{}\",\"member\":{},\"shard\":{},\"job\":{},\"a\":{},\"b\":{}}}",
        ev.at,
        ev.kind.label(),
        ev.member,
        ev.shard,
        ev.job,
        ev.a,
        ev.b,
    ));
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightKind;
    use crate::hist::Histogram;

    fn sample() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.add_counter("events", 10);
        s.add_gauge("resident", 3);
        let h = Histogram::new();
        h.record(100);
        h.record(200);
        s.merge_histogram("lat_ns", h.snapshot());
        s.push_flight(FlightEvent {
            at: 7,
            kind: FlightKind::Eviction,
            member: 0,
            shard: 1,
            job: 2,
            a: 3,
            b: 4,
        });
        s
    }

    #[test]
    fn merge_sums_counters_and_gauges_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("events"), Some(20));
        assert_eq!(a.gauge("resident"), Some(6));
        assert_eq!(a.histogram("lat_ns").unwrap().count(), 4);
        assert_eq!(a.flight().len(), 2);
    }

    #[test]
    fn merge_interleaves_flight_by_stamp() {
        let mut a = TelemetrySnapshot::new();
        let mut b = TelemetrySnapshot::new();
        for at in [5u64, 9] {
            a.push_flight(FlightEvent {
                at,
                kind: FlightKind::WorkerGone,
                member: 0,
                shard: 0,
                job: 0,
                a: 0,
                b: 0,
            });
        }
        b.push_flight(FlightEvent {
            at: 7,
            kind: FlightKind::WorkerGone,
            member: 0,
            shard: 0,
            job: 0,
            a: 0,
            b: 0,
        });
        a.merge(&b);
        let stamps: Vec<u64> = a.flight().iter().map(|e| e.at).collect();
        assert_eq!(stamps, vec![5, 7, 9]);
    }

    #[test]
    fn json_has_expected_shape() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"counters\":{\"events\":10}"));
        assert!(j.contains("\"gauges\":{\"resident\":3}"));
        assert!(j.contains("\"lat_ns\":{\"count\":2"));
        assert!(j.contains("\"kind\":\"eviction\""));
        // Balanced braces (cheap syntactic sanity; the experiments
        // crate's real parser round-trips this in its own tests).
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prometheus_exposition_has_types_and_quantiles() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE mpp_events counter\nmpp_events 10\n"));
        assert!(p.contains("# TYPE mpp_resident gauge\nmpp_resident 3\n"));
        assert!(p.contains("# TYPE mpp_lat_ns summary\n"));
        assert!(p.contains("mpp_lat_ns{quantile=\"0.5\"}"));
        assert!(p.contains("mpp_lat_ns_count 2\n"));
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_snapshot_is_empty() {
        let s = TelemetrySnapshot::new();
        assert!(s.is_empty());
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"flight\":[]}"
        );
    }
}
