//! # mpp-telemetry — engine observability primitives
//!
//! The serving layers (`mpp-engine`, `mpp-runtime`) answer "how many"
//! questions with [`ShardMetrics`]-style counters; this crate answers
//! "how long" and "what happened when":
//!
//! * [`Histogram`] — a fixed-size, lock-free, log-linear HDR-style
//!   latency histogram (exact below 32, ≤ 1/64 relative quantile error
//!   up to 2^40, saturating above). Recording is wait-free and
//!   allocation-free; histograms merge bucket-wise across shards,
//!   engines, and federation members.
//! * [`Registry`] — named counters / gauges / histograms with lock-free
//!   recording handles.
//! * [`FlightRecorder`] — a fixed-capacity ring of recent structured
//!   events (evictions, backpressure blocks/sheds, worker deaths,
//!   period churn, epoch re-bounds) with engine-time stamps and
//!   member/shard/job attribution.
//! * [`TelemetrySnapshot`] — an owned, mergeable export surface with
//!   serde-free JSON and Prometheus-style text writers.
//!
//! Everything is hand-rolled: the build environment has no crates.io,
//! and the hot-path requirements (zero allocation, wait-free recording)
//! are easier to prove on 300 lines we own than on a vendored tower.
//!
//! [`ShardMetrics`]: ../mpp_engine/struct.ShardMetrics.html

mod flight;
mod hist;
mod registry;
mod snapshot;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use hist::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS, LINEAR_MAX,
    MAX_QUANTILE_ERROR, SATURATION, SUB_BITS,
};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::TelemetrySnapshot;

/// Engine-wide telemetry switch and sizing.
///
/// Default is **disabled**: the engine takes no clock readings, records
/// nothing, and `telemetry()` accessors return `None` — the zero-alloc
/// and throughput guarantees of the hot path are unchanged. Enabling
/// costs two monotonic clock reads per *batch* (not per event) plus a
/// handful of relaxed atomic adds; see `BENCH_engine.json` for the
/// measured overhead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Capacity of each flight-recorder ring (per shard, plus one per
    /// engine client and one per federation). Clamped to ≥ 1.
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            flight_capacity: 256,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry on, default ring sizing.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }

    /// Overrides the flight-recorder ring capacity.
    pub fn flight_capacity(mut self, cap: usize) -> Self {
        self.flight_capacity = cap;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_to_disabled() {
        let c = TelemetryConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.flight_capacity, 256);
        let on = TelemetryConfig::enabled().flight_capacity(8);
        assert!(on.enabled);
        assert_eq!(on.flight_capacity, 8);
    }
}
