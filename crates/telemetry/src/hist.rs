//! Log-linear HDR-style histogram with a fixed atomic bucket array.
//!
//! The bucket scheme trades memory for a hard error bound:
//!
//! * values `0..32` land in 32 **linear** buckets of width 1 — recorded
//!   exactly;
//! * values `32..2^40` land in **log-linear** buckets: each power-of-two
//!   octave `[2^k, 2^(k+1))` is split into 32 equal sub-buckets, so a
//!   bucket's width is at most 1/32 of its lower bound;
//! * values `>= 2^40` saturate into the top bucket (the true maximum is
//!   still tracked exactly by the `max` register).
//!
//! Quantile readout returns the midpoint of the bucket holding the
//! requested rank, which bounds the relative quantile error at
//! **1/64 (1.5625 %)** for any value in the log-linear range and 0 for
//! the linear range. `2^40` nanoseconds is ~18 minutes — far beyond any
//! per-batch latency this engine can produce, so saturation is a
//! theoretical guard, not an expected regime.
//!
//! `record` is wait-free: three `fetch_add`s and a `fetch_max`, no
//! allocation, no locks. Histograms merge by bucket-wise addition, so a
//! merge of per-shard histograms is exactly the histogram of the union
//! of their samples (proven by the differential proptest).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of exact linear buckets (values `0..LINEAR_MAX`).
pub const LINEAR_MAX: u64 = 32;
/// Sub-bucket resolution: `2^SUB_BITS` sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32
/// Octaves covered by the log-linear range (`2^5 .. 2^40`).
const OCTAVES: usize = 35;
/// Total bucket count (32 linear + 35 octaves x 32 sub-buckets).
pub const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUB; // 1152
/// Smallest value that saturates into the top bucket.
pub const SATURATION: u64 = 1 << (SUB_BITS as u64 + OCTAVES as u64); // 2^40

/// Maximum relative quantile error in the log-linear range, as a
/// fraction of the true value (half a bucket width over the bucket's
/// lower bound: `2^(o-1) / (32 * 2^o) = 1/64`).
pub const MAX_QUANTILE_ERROR: f64 = 1.0 / 64.0;

/// Maps a value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    if v >= SATURATION {
        return BUCKETS - 1;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB - 1);
    LINEAR_MAX as usize + octave * SUB + sub
}

/// Inclusive lower bound and width of bucket `idx`.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < LINEAR_MAX as usize {
        return (idx as u64, 1);
    }
    let rel = idx - LINEAR_MAX as usize;
    let octave = (rel / SUB) as u32;
    let sub = (rel % SUB) as u64;
    let lower = (LINEAR_MAX + sub) << octave;
    (lower, 1u64 << octave)
}

/// The representative value reported for bucket `idx` (its midpoint;
/// exact for linear buckets).
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    let (lower, width) = bucket_bounds(idx);
    lower + width / 2
}

/// A fixed-size, lock-free, mergeable latency histogram.
///
/// All mutation goes through `&self` with relaxed atomics; recording
/// never allocates. See the module docs for the bucket scheme and
/// error bounds.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Relaxed))
            .field("sum", &self.sum.load(Relaxed))
            .field("max", &self.max.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram. This is the only allocating operation.
    pub fn new() -> Self {
        // `AtomicU64` has no Copy, so build the boxed array from a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().expect("BUCKETS length");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records a single value. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v` in one shot (used to fold a batch
    /// of identical-cost events into the per-event distribution without
    /// `n` clock reads).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let t = theirs.load(Relaxed);
            if t > 0 {
                mine.fetch_add(t, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// An owned point-in-time copy, suitable for merging across shards
    /// / members and for quantile readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// An owned, mergeable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (tracked outside the buckets, so it
    /// is precise even past saturation).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the representative
    /// (midpoint) of the bucket holding the rank-`round(q*(count-1))`
    /// sample, clamped to the exactly-tracked maximum (so `p50 ≤ p90 ≤
    /// p99 ≤ max` always holds — the top sample's bucket midpoint
    /// could otherwise exceed the value actually recorded). Exact
    /// below [`LINEAR_MAX`], within [`MAX_QUANTILE_ERROR`] relative
    /// error up to [`SATURATION`]; the clamp only tightens that bound.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_mid(idx).min(self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (index order; see [`bucket_bounds`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            let (lower, width) = bucket_bounds(v as usize);
            assert_eq!((lower, width), (v, 1));
        }
    }

    #[test]
    fn bucket_index_matches_bounds_across_range() {
        // Every probed value must fall inside the bounds of its bucket.
        let mut v = 1u64;
        while v < SATURATION {
            for probe in [v, v + v / 3, v + v / 2] {
                if probe >= SATURATION {
                    continue;
                }
                let idx = bucket_index(probe);
                let (lower, width) = bucket_bounds(idx);
                assert!(
                    probe >= lower && probe < lower + width,
                    "v={probe} idx={idx} bounds=({lower},{width})"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn bucket_indices_are_monotone() {
        let mut prev = 0;
        let mut v = 1u64;
        while v < SATURATION * 2 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            v = v + 1 + v / 7;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_exact_values() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 10);
        assert_eq!(s.quantile(0.5), 6); // rank round(0.5*9)=5 -> value 6
        assert_eq!(s.max(), 10);
        assert_eq!(s.mean(), 5);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..7 {
            a.record(12345);
        }
        b.record_n(12345, 7);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn merge_is_bucketwise_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 100, 9_999, 1_000_000] {
            a.record(v);
            all.record(v);
        }
        for v in [4u64, 100, 77_777_777] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn saturation_lands_in_top_bucket_max_stays_exact() {
        let h = Histogram::new();
        h.record(SATURATION);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets()[BUCKETS - 1], 2);
        assert_eq!(s.max(), u64::MAX);
        // Quantiles stay finite and in the top bucket's range.
        let (lower, width) = bucket_bounds(BUCKETS - 1);
        let q = s.quantile(0.5);
        assert!(q >= lower && q < lower + width);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.max(), 0);
    }
}
