//! The flight recorder: a fixed-capacity ring of recent structured
//! engine events.
//!
//! Counters tell you *how many* evictions or sheds happened; the flight
//! recorder tells you *which* — each event carries an engine-time stamp
//! plus member/shard/job attribution, so "what was shard 3 doing when
//! the lane blocked?" has an answer after the fact. The ring is
//! pre-allocated at construction and overwrites its oldest entry when
//! full: recording is O(1) and allocation-free, and a runaway event
//! source can never grow memory.

/// What happened. Kind-specific payloads ride in [`FlightEvent::a`] /
/// [`FlightEvent::b`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A stream was evicted (TTL expiry, LRU pressure, or explicit).
    /// `a` = the stream's rank, `b` = last-seen stamp.
    Eviction,
    /// A bounded observe lane filled and the sender blocked.
    /// `a` = events in the blocked leg, `b` = nanoseconds spent blocked.
    BackpressureBlock,
    /// A bounded observe lane filled and a leg was shed.
    /// `a` = events dropped.
    BackpressureShed,
    /// A shard worker was found dead. `a` = events in the failed leg.
    WorkerGone,
    /// A stream's detected period changed. `a` = the stream's rank,
    /// `b` = length of the run the old period survived (observations).
    PeriodChurn,
    /// Federation epoch maintenance re-bounded a member's lanes.
    /// `a` = observed queue high water, `b` = the new capacity.
    EpochRebound,
    /// A job was migrated live between federation members. `member` is
    /// the source, `a` = streams moved, `b` = the destination member.
    JobMigrated,
    /// A stream's serving champion swapped to a challenger with a
    /// sustained scoring lead. `a` = `(stream-kind index << 32) | rank`,
    /// `b` = `(old champion's predictor tag << 8) | new champion's tag`.
    ChampionSwapped,
    /// Crash recovery found a torn or corrupt tail in the observation
    /// log and cut it back to the last valid frame. `a` = bytes
    /// dropped, `b` = byte offset of the tear in its segment.
    WalTruncated,
}

impl FlightKind {
    /// Stable lower-snake label used by the JSON / Prometheus writers.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::Eviction => "eviction",
            FlightKind::BackpressureBlock => "backpressure_block",
            FlightKind::BackpressureShed => "backpressure_shed",
            FlightKind::WorkerGone => "worker_gone",
            FlightKind::PeriodChurn => "period_churn",
            FlightKind::EpochRebound => "epoch_rebound",
            FlightKind::JobMigrated => "job_migrated",
            FlightKind::ChampionSwapped => "champion_swapped",
            FlightKind::WalTruncated => "wal_truncated",
        }
    }
}

/// One recorded event. Plain old data: pushing one never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Engine-time stamp (1-based global event counter) when the event
    /// was recorded.
    pub at: u64,
    /// Event kind; see [`FlightKind`] for the `a`/`b` payloads.
    pub kind: FlightKind,
    /// Federation member index (0 outside a federation).
    pub member: u32,
    /// Shard index within the engine (0 when not shard-specific).
    pub shard: u32,
    /// Job id the event is attributed to (0 = the default job or N/A).
    pub job: u32,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

/// Fixed-capacity ring of [`FlightEvent`]s, oldest-overwritten.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<FlightEvent>,
    cap: usize,
    next: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder holding the last `cap` events (`cap` is clamped to at
    /// least 1). All memory is allocated here, up front.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Records an event. O(1), never allocates (the ring was
    /// pre-allocated at construction).
    #[inline]
    pub fn push(&mut self, ev: FlightEvent) {
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else {
            self.ring[self.next] = ev;
        }
        self.next = (self.next + 1) % self.cap;
        self.total += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained events, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        if self.ring.len() < self.cap {
            out.extend_from_slice(&self.ring);
        } else {
            out.extend_from_slice(&self.ring[self.next..]);
            out.extend_from_slice(&self.ring[..self.next]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> FlightEvent {
        FlightEvent {
            at,
            kind: FlightKind::Eviction,
            member: 0,
            shard: 0,
            job: 0,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut r = FlightRecorder::new(3);
        for at in 1..=5 {
            r.push(ev(at));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        let stamps: Vec<u64> = r.dump().iter().map(|e| e.at).collect();
        assert_eq!(stamps, vec![3, 4, 5]);
    }

    #[test]
    fn partial_ring_dumps_in_push_order() {
        let mut r = FlightRecorder::new(8);
        r.push(ev(1));
        r.push(ev(2));
        let stamps: Vec<u64> = r.dump().iter().map(|e| e.at).collect();
        assert_eq!(stamps, vec![1, 2]);
        assert!(!r.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.dump().len(), 1);
        assert_eq!(r.dump()[0].at, 2);
    }

    #[test]
    fn kinds_have_stable_labels() {
        assert_eq!(FlightKind::WorkerGone.label(), "worker_gone");
        assert_eq!(FlightKind::EpochRebound.label(), "epoch_rebound");
    }
}
