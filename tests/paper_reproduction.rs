//! End-to-end reproduction checks against the paper's published numbers.
//!
//! These run the class-A configurations the assertions need (a few
//! seconds total in release, a bit longer in debug) and pin the headline
//! claims: Table 1 message counts, Figure 3 logical accuracy, and the
//! Figure 4 logical-vs-physical orderings.

use mpp_experiments::paper::{paper_row, PAPER_LOGICAL_FLOOR};
use mpp_experiments::{accuracy_row, Level, Target, TracedRun};
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};

fn class_a(id: BenchId, procs: usize) -> TracedRun {
    TracedRun::execute(BenchmarkConfig::new(id, procs, Class::A), 2003)
}

#[test]
fn table1_p2p_counts_match_paper_within_two_percent() {
    for (id, procs) in [
        (BenchId::Bt, 9),
        (BenchId::Cg, 4),
        (BenchId::Lu, 4),
        (BenchId::Is, 8),
        (BenchId::Sweep3d, 16),
    ] {
        let run = class_a(id, procs);
        let paper = paper_row(&run.config.label()).expect("paper row exists");
        let rel = (run.census.p2p_msgs as f64 - paper.p2p_msgs as f64).abs()
            / (paper.p2p_msgs.max(1)) as f64;
        assert!(
            rel < 0.02,
            "{}: {} p2p vs paper {} ({:.1} % off)",
            run.config.label(),
            run.census.p2p_msgs,
            paper.p2p_msgs,
            rel * 100.0
        );
    }
}

#[test]
fn table1_is_has_exactly_eleven_p2p_and_p_senders() {
    let run = class_a(BenchId::Is, 8);
    assert_eq!(run.census.p2p_msgs, 11, "1 warm-up + 10 timed iterations");
    assert_eq!(run.census.frequent_senders, 8, "alltoall reaches everyone");
}

#[test]
fn bt9_sender_and_size_streams_have_period_18() {
    // Figure 1: "the period of the sender and message size streams is 18".
    let run = class_a(BenchId::Bt, 9);
    let p2p: Vec<(u64, u64)> = run
        .logical
        .senders
        .iter()
        .zip(&run.logical.sizes)
        .zip(&run.logical.kinds)
        .filter(|&(_, k)| !k.is_collective())
        .map(|((&s, &b), _)| (s, b))
        .collect();
    let senders: Vec<u64> = p2p.iter().map(|&(s, _)| s).collect();
    let sizes: Vec<u64> = p2p.iter().map(|&(_, b)| b).collect();
    let tail = senders.len() - 180..senders.len();
    assert_eq!(
        mpp_core::stream::exact_period(&senders[tail.clone()]),
        Some(18)
    );
    assert_eq!(mpp_core::stream::exact_period(&sizes[tail]), Some(18));
    // And the three sizes of Figure 1b, exactly.
    let mut distinct = sizes.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct, vec![3240, 10240, 19440]);
}

#[test]
fn fig3_logical_accuracy_beats_ninety_percent() {
    // §5.1's headline for every benchmark family (IS.4 is the documented
    // short-stream exception, checked separately).
    for (id, procs) in [
        (BenchId::Bt, 9),
        (BenchId::Cg, 8),
        (BenchId::Lu, 16),
        (BenchId::Sweep3d, 16),
    ] {
        let run = class_a(id, procs);
        for target in [Target::Sender, Target::Size] {
            let row = accuracy_row(&run, Level::Logical, target);
            for h in 1..=5 {
                let acc = row.at(h).expect("evaluated");
                assert!(
                    acc > PAPER_LOGICAL_FLOOR,
                    "{} logical {} +{h}: {:.3}",
                    run.config.label(),
                    target.label(),
                    acc
                );
            }
        }
    }
}

#[test]
fn fig3_is4_sits_in_the_eighty_percent_band() {
    // "Only in the NAS IS.4 we have around 80 %. The reason is that the
    // data stream with ~100 samples is very short."
    let run = class_a(BenchId::Is, 4);
    let row = accuracy_row(&run, Level::Logical, Target::Sender);
    let acc = row.at(1).unwrap();
    assert!((0.70..0.95).contains(&acc), "is.4 logical +1 = {acc:.3}");
}

#[test]
fn fig4_physical_never_beats_logical() {
    for (id, procs) in [(BenchId::Bt, 9), (BenchId::Is, 16), (BenchId::Sweep3d, 16)] {
        let run = class_a(id, procs);
        for target in [Target::Sender, Target::Size] {
            let log = accuracy_row(&run, Level::Logical, target).at(1).unwrap();
            let phys = accuracy_row(&run, Level::Physical, target).at(1).unwrap();
            assert!(
                phys <= log + 0.02,
                "{} {}: physical {phys:.3} vs logical {log:.3}",
                run.config.label(),
                target.label()
            );
        }
    }
}

#[test]
fn fig4_degradation_ordering_matches_the_paper() {
    // §5.2: LU stays high (few distinct senders hide reordering); BT
    // degrades visibly; IS sender prediction is the hard case.
    let lu = accuracy_row(&class_a(BenchId::Lu, 16), Level::Physical, Target::Sender)
        .at(1)
        .unwrap();
    let bt = accuracy_row(&class_a(BenchId::Bt, 16), Level::Physical, Target::Sender)
        .at(1)
        .unwrap();
    let is = accuracy_row(&class_a(BenchId::Is, 16), Level::Physical, Target::Sender)
        .at(1)
        .unwrap();
    assert!(lu > 0.9, "lu.16 physical stays high: {lu:.3}");
    assert!(bt < lu, "bt.16 ({bt:.3}) degrades below lu.16 ({lu:.3})");
    assert!(is < lu, "is.16 ({is:.3}) degrades below lu.16 ({lu:.3})");
    assert!(bt > 0.2, "bt.16 remains partially predictable: {bt:.3}");
}

#[test]
fn fig2_physical_is_a_locally_reordered_permutation() {
    // Figure 2: same messages, some local order changes.
    let run = class_a(BenchId::Bt, 4);
    let mut log = run.logical.senders.clone();
    let mut phys = run.physical.senders.clone();
    let diffs = log.iter().zip(&phys).filter(|(a, b)| a != b).count();
    assert!(diffs > 0, "some positions must differ");
    assert!(
        (diffs as f64) < 0.5 * log.len() as f64,
        "but the streams stay mostly aligned ({} of {})",
        diffs,
        log.len()
    );
    log.sort_unstable();
    phys.sort_unstable();
    assert_eq!(log, phys, "physical is a permutation of logical");
}
