//! Reproducibility guarantees: simulation output is a pure function of
//! the seed, independent of thread scheduling, and distinct seeds
//! genuinely perturb the physical level while leaving the logical level
//! untouched.

use mpp_experiments::TracedRun;
use mpp_nasbench::{build_program, BenchId, BenchmarkConfig, Class};

fn run(id: BenchId, procs: usize, seed: u64) -> TracedRun {
    TracedRun::execute(BenchmarkConfig::new(id, procs, Class::S), seed)
}

#[test]
fn same_seed_gives_bit_identical_streams() {
    for id in [
        BenchId::Bt,
        BenchId::Cg,
        BenchId::Lu,
        BenchId::Is,
        BenchId::Sweep3d,
    ] {
        let procs = if id == BenchId::Bt { 9 } else { 8 };
        let a = run(id, procs, 42);
        let b = run(id, procs, 42);
        assert_eq!(
            a.logical.senders, b.logical.senders,
            "{id:?} logical senders"
        );
        assert_eq!(a.logical.sizes, b.logical.sizes, "{id:?} logical sizes");
        assert_eq!(
            a.physical.senders, b.physical.senders,
            "{id:?} physical senders"
        );
        assert_eq!(a.physical.sizes, b.physical.sizes, "{id:?} physical sizes");
    }
}

#[test]
fn different_seeds_keep_logical_but_move_physical() {
    let a = run(BenchId::Bt, 9, 1);
    let b = run(BenchId::Bt, 9, 2);
    // The program is deterministic: logical streams are seed-independent.
    assert_eq!(a.logical.senders, b.logical.senders);
    assert_eq!(a.logical.sizes, b.logical.sizes);
    // The network noise is seeded: physical order differs somewhere.
    assert_ne!(
        a.physical.senders, b.physical.senders,
        "physical order should depend on the seed"
    );
}

#[test]
fn census_is_seed_independent() {
    // Message counts and value multiplicities are logical-level facts.
    let a = run(BenchId::Lu, 8, 10);
    let b = run(BenchId::Lu, 8, 20);
    assert_eq!(a.census, b.census);
}

/// Runs a NAS config on a jittered world served by the shared
/// persistent prediction engine (the §2.3 oracle path).
fn run_with_engine_oracle(
    id: BenchId,
    procs: usize,
    seed: u64,
    shards: usize,
) -> mpp_mpisim::Trace {
    use mpp_mpisim::net::JitterNetwork;
    use mpp_mpisim::{World, WorldConfig};
    use mpp_runtime::{EngineHandle, EngineOracleFactory};

    let cfg = BenchmarkConfig::new(id, procs, Class::S);
    let wcfg = WorldConfig::new(procs).seed(seed);
    let net = JitterNetwork::from_config(&wcfg);
    let handle = EngineHandle::with_config(shards, mpp_core::dpd::DpdConfig::default());
    let program = build_program(&cfg);
    World::new(wcfg, net)
        .with_oracle(EngineOracleFactory::new(handle, 4))
        .run(program.as_ref())
}

#[test]
fn engine_backed_oracle_is_seed_deterministic() {
    // Same seed ⇒ identical makespan and physical streams, even though
    // every rank talks to shared engine worker threads whose scheduling
    // the OS controls. Different shard counts must not matter either:
    // sharding is a throughput device, never a semantics device.
    let a = run_with_engine_oracle(BenchId::Cg, 4, 42, 4);
    let b = run_with_engine_oracle(BenchId::Cg, 4, 42, 4);
    let c = run_with_engine_oracle(BenchId::Cg, 4, 42, 1);
    assert_eq!(a.makespan(), b.makespan(), "same seed, same makespan");
    assert_eq!(a.makespan(), c.makespan(), "shard count is invisible");
    assert_eq!(a.total_receives(), b.total_receives());
    for rank in 0..4 {
        let (ra, rb) = (a.receives_of(rank), b.receives_of(rank));
        assert_eq!(ra.len(), rb.len(), "rank {rank} receive count");
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.src, y.src, "rank {rank} physical sender order");
            assert_eq!(x.bytes, y.bytes, "rank {rank} physical size order");
        }
    }
    // The seed still matters: a different one moves the physical level.
    let d = run_with_engine_oracle(BenchId::Cg, 4, 43, 4);
    assert_ne!(a.makespan(), d.makespan(), "different seed, different run");
}

#[test]
fn repeated_runs_under_thread_nondeterminism() {
    // Run the same config several times; OS scheduling varies across
    // runs but virtual-time output must not.
    let baseline = run(BenchId::Is, 8, 7);
    for _ in 0..3 {
        let again = run(BenchId::Is, 8, 7);
        assert_eq!(baseline.physical.senders, again.physical.senders);
        assert_eq!(baseline.physical.sizes, again.physical.sizes);
    }
}
