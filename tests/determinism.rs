//! Reproducibility guarantees: simulation output is a pure function of
//! the seed, independent of thread scheduling, and distinct seeds
//! genuinely perturb the physical level while leaving the logical level
//! untouched.

use mpp_experiments::TracedRun;
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};

fn run(id: BenchId, procs: usize, seed: u64) -> TracedRun {
    TracedRun::execute(BenchmarkConfig::new(id, procs, Class::S), seed)
}

#[test]
fn same_seed_gives_bit_identical_streams() {
    for id in [
        BenchId::Bt,
        BenchId::Cg,
        BenchId::Lu,
        BenchId::Is,
        BenchId::Sweep3d,
    ] {
        let procs = if id == BenchId::Bt { 9 } else { 8 };
        let a = run(id, procs, 42);
        let b = run(id, procs, 42);
        assert_eq!(
            a.logical.senders, b.logical.senders,
            "{id:?} logical senders"
        );
        assert_eq!(a.logical.sizes, b.logical.sizes, "{id:?} logical sizes");
        assert_eq!(
            a.physical.senders, b.physical.senders,
            "{id:?} physical senders"
        );
        assert_eq!(a.physical.sizes, b.physical.sizes, "{id:?} physical sizes");
    }
}

#[test]
fn different_seeds_keep_logical_but_move_physical() {
    let a = run(BenchId::Bt, 9, 1);
    let b = run(BenchId::Bt, 9, 2);
    // The program is deterministic: logical streams are seed-independent.
    assert_eq!(a.logical.senders, b.logical.senders);
    assert_eq!(a.logical.sizes, b.logical.sizes);
    // The network noise is seeded: physical order differs somewhere.
    assert_ne!(
        a.physical.senders, b.physical.senders,
        "physical order should depend on the seed"
    );
}

#[test]
fn census_is_seed_independent() {
    // Message counts and value multiplicities are logical-level facts.
    let a = run(BenchId::Lu, 8, 10);
    let b = run(BenchId::Lu, 8, 20);
    assert_eq!(a.census, b.census);
}

#[test]
fn repeated_runs_under_thread_nondeterminism() {
    // Run the same config several times; OS scheduling varies across
    // runs but virtual-time output must not.
    let baseline = run(BenchId::Is, 8, 7);
    for _ in 0..3 {
        let again = run(BenchId::Is, 8, 7);
        assert_eq!(baseline.physical.senders, again.physical.senders);
        assert_eq!(baseline.physical.sizes, again.physical.sizes);
    }
}
