//! Cross-crate checks of the §2 runtime policies on real simulated
//! workload streams (not synthetic patterns): the prediction-driven
//! policies must deliver their promised trade-offs end to end.

use mpp_experiments::{experiment_dpd_config, Level, Target, TracedRun};
use mpp_nasbench::{BenchId, BenchmarkConfig, Class};
use mpp_runtime::{
    simulate_buffers, simulate_credits, simulate_protocol, BufferPolicy, CreditPolicy,
    ProtocolCosts,
};

/// (sender, size) pairs of the traced rank's physical stream.
fn arrival_stream(id: BenchId, procs: usize, class: Class) -> (TracedRun, Vec<(u64, u64)>) {
    let run = TracedRun::execute(BenchmarkConfig::new(id, procs, class), 2003);
    let stream = run
        .physical
        .senders
        .iter()
        .zip(&run.physical.sizes)
        .map(|(&s, &b)| (s, b))
        .collect();
    (run, stream)
}

#[test]
fn predictive_buffers_beat_all_pairs_memory_on_sweep3d() {
    let (_, stream) = arrival_stream(BenchId::Sweep3d, 16, Class::A);
    let dpd = experiment_dpd_config();
    let all = simulate_buffers(BufferPolicy::AllPairs, &stream, 16, 16 * 1024, &dpd);
    let pred = simulate_buffers(
        BufferPolicy::Predictive { depth: 5 },
        &stream,
        16,
        16 * 1024,
        &dpd,
    );
    assert!(pred.hit_rate() > 0.85, "hit rate {}", pred.hit_rate());
    assert!(
        pred.peak_bytes * 4 < all.peak_bytes,
        "predictive peak {} vs all-pairs {}",
        pred.peak_bytes,
        all.peak_bytes
    );
}

#[test]
fn predictive_credits_prevent_overflow_on_is() {
    // Credits are granted from the receiver's *delivery* history (the
    // logical stream): the unordered partner set per burst is what the
    // §2.2 receiver plans against — order within the burst is irrelevant.
    let (run, _) = arrival_stream(BenchId::Is, 16, Class::A);
    let short: Vec<(u64, u64)> = run
        .logical
        .senders
        .iter()
        .zip(&run.logical.sizes)
        .map(|(&s, &b)| (s, b))
        .filter(|&(_, b)| b <= 16 * 1024)
        .collect();
    let dpd = experiment_dpd_config();
    let budget = 8 * 1024;
    let eager = simulate_credits(CreditPolicy::UnsolicitedEager, &short, 16, budget, &dpd);
    let credit = simulate_credits(CreditPolicy::PredictiveCredits, &short, 16, budget, &dpd);
    assert!(
        eager.overflow_bytes > 0,
        "the storm must overrun the budget"
    );
    assert_eq!(credit.overflow_bytes, 0, "credits must bound memory");
    assert!(credit.peak_bytes <= budget);
    assert!(credit.eager > 0, "prediction keeps part of the fast path");
}

#[test]
fn predicted_preallocation_recovers_rendezvous_gap_on_cg() {
    let (_, stream) = arrival_stream(BenchId::Cg, 8, Class::A);
    let out = simulate_protocol(
        &ProtocolCosts::default(),
        &stream,
        5,
        &experiment_dpd_config(),
    );
    assert!(
        out.hits + out.misses > 0,
        "cg.8 has rendezvous-sized messages"
    );
    assert!(out.predicted_ns <= out.baseline_ns);
    assert!(out.predicted_ns >= out.oracle_ns);
    assert!(
        out.gap_recovered() > 0.5,
        "periodic large messages should be mostly recovered: {:.2}",
        out.gap_recovered()
    );
}

#[test]
fn set_prediction_beats_ordered_prediction_on_reordered_streams() {
    // §5.3: buffer managers only need the unordered next-k set, which
    // survives physical reordering better than exact-order prediction.
    use mpp_core::dpd::DpdPredictor;
    use mpp_core::eval::{SetEvaluator, StreamEvaluator};
    let run = TracedRun::execute(BenchmarkConfig::new(BenchId::Bt, 9, Class::A), 2003);
    let stream = run.stream(Level::Physical, Target::Sender);
    let dpd = experiment_dpd_config();

    let mut ordered = StreamEvaluator::new(DpdPredictor::new(dpd.clone()), 5);
    ordered.feed_stream(stream);
    let ordered_acc = ordered.tracker().horizon(1).accuracy().unwrap();

    let mut set = SetEvaluator::new(DpdPredictor::new(dpd), 5);
    set.feed_stream(stream);
    let set_acc = set.hit_rate().unwrap();

    assert!(
        set_acc > ordered_acc,
        "set-of-5 {set_acc:.3} should beat ordered +1 {ordered_acc:.3}"
    );
}
