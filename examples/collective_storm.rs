//! §2.2 in action: surviving a collective incast with predicted credits.
//!
//! When many ranks send short messages to one receiver (an IS-style
//! collective), unsolicited eager delivery can exhaust receiver memory —
//! "the sent messages will be lost or, even worse, the application may
//! crash". This example replays the IS.32 arrival stream and a synthetic
//! worst-case storm under three flow-control policies.
//!
//! ```text
//! cargo run --release --example collective_storm
//! ```

use mpi_predict::bench::{is::Is, Class};
use mpi_predict::core::dpd::DpdConfig;
use mpi_predict::runtime::{simulate_credits, CreditPolicy};
use mpi_predict::sim::net::JitterNetwork;
use mpi_predict::sim::{StreamFilter, World, WorldConfig};

fn report(label: &str, stream: &[(u64, u64)], burst: usize, budget: u64, dpd: &DpdConfig) {
    println!(
        "\n{label}: {} messages, burst {burst}, budget {} KB",
        stream.len(),
        budget / 1024
    );
    println!(
        "  {:<20} {:>8} {:>8} {:>12} {:>10}",
        "policy", "eager%", "asked%", "overflow KB", "peak KB"
    );
    for policy in [
        CreditPolicy::UnsolicitedEager,
        CreditPolicy::AlwaysAsk,
        CreditPolicy::PredictiveCredits,
    ] {
        let out = simulate_credits(policy, stream, burst, budget, dpd);
        let total = (out.eager + out.asked).max(1);
        println!(
            "  {:<20} {:>7.1}% {:>7.1}% {:>12.1} {:>10.1}",
            out.policy.label(),
            100.0 * out.eager as f64 / total as f64,
            100.0 * out.asked as f64 / total as f64,
            out.overflow_bytes as f64 / 1024.0,
            out.peak_bytes as f64 / 1024.0
        );
    }
}

fn main() {
    let dpd = DpdConfig {
        window: 512,
        max_lag: 256,
        tolerance: 0.4,
        min_comparisons: 8,
        evidence_factor: 0.125,
        ..DpdConfig::default()
    };

    // A worst-case periodic storm: 128 senders, 2 KB each, every burst.
    let storm: Vec<(u64, u64)> = (0..128u64 * 30).map(|i| (i % 128, 2048)).collect();
    report("synthetic 128-way incast", &storm, 128, 64 * 1024, &dpd);

    // The real thing: IS with 32 ranks (class A), short messages only.
    let wcfg = WorldConfig::new(32).seed(11);
    let net = JitterNetwork::from_config(&wcfg);
    let is = Is::new(32, Class::A);
    println!("\nrunning is.32 class A ...");
    let trace = World::new(wcfg, net).run(&is);
    let s = trace.physical_stream(3, StreamFilter::all());
    let short: Vec<(u64, u64)> = s
        .senders
        .iter()
        .zip(&s.sizes)
        .filter(|&(_, &b)| b <= 16 * 1024)
        .map(|(&a, &b)| (a, b))
        .collect();
    report("is.32 short messages", &short, 32, 16 * 1024, &dpd);

    println!("\nUnsolicited eager overflows the budget (lost messages); always-ask");
    println!("is safe but pays three wire messages per delivery; predicted credits");
    println!("are safe *and* keep the predictable fraction on the fast path.");
}
