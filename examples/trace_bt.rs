//! Trace NAS BT on the simulator and predict its message streams.
//!
//! Reproduces the paper's §5 pipeline end to end for one configuration:
//! run the BT.9 communication skeleton (class A) on the simulated
//! machine, extract process 3's logical and physical receive streams,
//! and compare DPD prediction accuracy on both levels.
//!
//! ```text
//! cargo run --release --example trace_bt
//! ```

use mpi_predict::bench::{bt::Bt, Class};
use mpi_predict::core::dpd::{DpdConfig, DpdPredictor};
use mpi_predict::core::eval::StreamEvaluator;
use mpi_predict::sim::net::JitterNetwork;
use mpi_predict::sim::{StreamFilter, World, WorldConfig};

fn main() {
    // Build the world: 9 ranks, jittered 2003-era network.
    let wcfg = WorldConfig::new(9).seed(2003);
    let net = JitterNetwork::from_config(&wcfg);
    let world = World::new(wcfg, net);

    // Run the BT communication skeleton at class A (200 iterations).
    let bt = Bt::new(9, Class::A);
    println!("running bt.9 class A ({} iterations) ...", bt.iterations());
    let trace = world.run(&bt);
    println!(
        "done: {} messages total, virtual makespan {}",
        trace.total_receives(),
        trace.makespan()
    );

    // Process 3's receive streams, as in Figures 1-4.
    let logical = trace.logical_stream(3, StreamFilter::all());
    let physical = trace.physical_stream(3, StreamFilter::all());
    println!(
        "\nprocess 3 received {} messages; first 18 physical senders: {:?}",
        logical.len(),
        &physical.senders[..18]
    );

    let dpd = DpdConfig {
        window: 512,
        max_lag: 256,
        tolerance: 0.4,
        min_comparisons: 8,
        evidence_factor: 0.125,
        ..DpdConfig::default()
    };
    for (name, senders) in [
        ("logical", &logical.senders),
        ("physical", &physical.senders),
    ] {
        let mut ev = StreamEvaluator::new(DpdPredictor::new(dpd.clone()), 5);
        ev.feed_stream(senders);
        let accs: Vec<String> = (1..=5)
            .map(|h| {
                format!(
                    "{:4.1}%",
                    ev.tracker().horizon(h).accuracy().unwrap_or(0.0) * 100.0
                )
            })
            .collect();
        println!(
            "{name:>8} sender prediction +1..+5: {}  (period {:?})",
            accs.join(" "),
            ev.predictor().period()
        );
    }
    println!("\nThe logical level is near-perfectly periodic; network randomness");
    println!("degrades the physical level — the contrast of Figures 3 and 4.");
}
