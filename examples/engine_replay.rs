//! Serve a whole simulated machine from the prediction engine.
//!
//! Runs the NAS BT.9 (class A) communication skeleton on the simulator, then
//! ingests *every* rank's receive stream — sender, size and tag — into
//! one persistent-worker `mpp-engine` instance through a client lane,
//! and prints per-rank `+1` hit rates plus the engine's per-shard
//! serving metrics.
//!
//! ```text
//! cargo run --release --example engine_replay
//! ```

use mpi_predict::bench::{bt::Bt, Class};
use mpi_predict::core::dpd::DpdConfig;
use mpi_predict::engine::{EngineConfig, Observation, PersistentEngine, StreamKey, StreamKind};
use mpi_predict::sim::net::JitterNetwork;
use mpi_predict::sim::{World, WorldConfig};

fn main() {
    // 1. Produce a trace: 9 ranks of BT class A on a jittered network.
    let wcfg = WorldConfig::new(9).seed(2003);
    let net = JitterNetwork::from_config(&wcfg);
    let bt = Bt::new(9, Class::A);
    println!("running bt.9 class A ...");
    let trace = World::new(wcfg, net).run(&bt);
    println!(
        "traced {} deliveries across 9 ranks\n",
        trace.total_receives()
    );

    // 2. Replay through a 4-shard persistent engine (one long-lived
    //    worker thread per shard; this client lane is our lock-free
    //    door into it). Per-rank hit rates are scored the strict online
    //    way: query the standing +1 forecast *before* observing each
    //    delivery.
    let engine = PersistentEngine::new(EngineConfig {
        shards: 4,
        dpd: DpdConfig::default(),
        ..EngineConfig::default()
    });
    let client = engine.client();
    println!(
        "{:<6} {:>9} {:>10} {:>10} {:>10}",
        "rank", "events", "sender+1", "size+1", "tag+1"
    );
    for rank in 0..trace.nprocs() {
        let events = trace.receives_of(rank);
        let r = rank as u32;
        let keys = [
            StreamKey::new(r, StreamKind::Sender),
            StreamKey::new(r, StreamKind::Size),
            StreamKey::new(r, StreamKind::Tag),
        ];
        let mut hits = [0u64; 3];
        let mut scored = [0u64; 3];
        let mut batch = Vec::with_capacity(3);
        for e in events {
            let actual = [e.src as u64, e.bytes, u64::from(e.tag)];
            for (i, key) in keys.iter().enumerate() {
                if let Some(p) = client.predict(*key, 1) {
                    scored[i] += 1;
                    if p == actual[i] {
                        hits[i] += 1;
                    }
                }
            }
            batch.clear();
            for (i, key) in keys.iter().enumerate() {
                batch.push(Observation::new(*key, actual[i]));
            }
            client.observe_batch(&batch);
        }
        let pct = |i: usize| {
            if scored[i] == 0 {
                "--".to_string()
            } else {
                format!("{:.1}%", 100.0 * hits[i] as f64 / scored[i] as f64)
            }
        };
        println!(
            "{:<6} {:>9} {:>10} {:>10} {:>10}",
            rank,
            events.len(),
            pct(0),
            pct(1),
            pct(2)
        );
    }

    // 3. Engine-side serving metrics, per shard.
    println!("\nper-shard engine metrics:");
    println!(
        "{:<6} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "shard", "ingested", "streams", "hits", "misses", "churn"
    );
    for (i, m) in client.metrics().shards.iter().enumerate() {
        println!(
            "{:<6} {:>9} {:>8} {:>8} {:>8} {:>7}",
            i, m.events_ingested, m.resident_streams, m.hits, m.misses, m.period_churn
        );
    }
    let total = client.metrics_total();
    println!(
        "\ntotal: {} events, {} streams, online +1 hit rate {:.1}%",
        total.events_ingested,
        total.resident_streams,
        100.0 * total.hit_rate().unwrap_or(0.0)
    );
}
