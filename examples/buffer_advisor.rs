//! §2.1 in action: prediction-driven receive-buffer management.
//!
//! A process that pre-allocates a 16 KB eager buffer for *every* peer
//! needs 160 MB at Blue-Gene scale. This example runs Sweep3D on the
//! simulator, replays the traced rank's arrival stream through the three
//! buffer policies, and prints the fast-path rate and memory footprint
//! of each — quantifying the paper's proposal.
//!
//! ```text
//! cargo run --release --example buffer_advisor
//! ```

use mpi_predict::bench::{sweep3d::Sweep3d, Class};
use mpi_predict::core::dpd::DpdConfig;
use mpi_predict::runtime::{simulate_buffers, BufferPolicy, MemoryModel};
use mpi_predict::sim::net::JitterNetwork;
use mpi_predict::sim::{StreamFilter, World, WorldConfig};

fn main() {
    // The machine-scale arithmetic first (the Blue Gene example).
    let model = MemoryModel::default();
    println!(
        "all-pairs eager buffers at 10 000 nodes: {:.0} MB per process",
        model.all_pairs_bytes(10_000) as f64 / (1024.0 * 1024.0)
    );
    println!(
        "with predicted partner sets (6 + 2 spare): {:.1} KB per process — {:.0}x less\n",
        model.predictive_bytes(6, 2) as f64 / 1024.0,
        model.reduction_factor(10_000, 6, 2)
    );

    // Now a real workload: Sweep3D on 16 ranks.
    let wcfg = WorldConfig::new(16).seed(7);
    let net = JitterNetwork::from_config(&wcfg);
    let sw = Sweep3d::new(16, Class::A);
    println!("running sw.16 class A ...");
    let trace = World::new(wcfg, net).run(&sw);
    let stream: Vec<(u64, u64)> = {
        let s = trace.physical_stream(3, StreamFilter::all());
        s.senders
            .iter()
            .zip(&s.sizes)
            .map(|(&a, &b)| (a, b))
            .collect()
    };
    println!("traced rank received {} messages\n", stream.len());

    let dpd = DpdConfig {
        window: 512,
        max_lag: 256,
        tolerance: 0.4,
        min_comparisons: 8,
        evidence_factor: 0.125,
        ..DpdConfig::default()
    };
    println!(
        "{:<18} {:>10} {:>18} {:>10} {:>10}",
        "policy", "fast path", "wire msgs/deliv.", "peak KB", "mean KB"
    );
    for policy in [
        BufferPolicy::AllPairs,
        BufferPolicy::OnDemand,
        BufferPolicy::Predictive { depth: 5 },
    ] {
        let out = simulate_buffers(policy, &stream, 16, 16 * 1024, &dpd);
        println!(
            "{:<18} {:>9.1}% {:>18.2} {:>10.1} {:>10.1}",
            out.policy.label(),
            out.hit_rate() * 100.0,
            out.mean_wire_messages(),
            out.peak_bytes as f64 / 1024.0,
            out.mean_bytes / 1024.0
        );
    }
    println!("\nPredictive allocation keeps nearly the all-pairs fast path at a");
    println!("fraction of its memory: the paper's §2.1 trade resolved by the DPD.");
}
