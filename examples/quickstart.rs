//! Quickstart: predict a periodic message stream with the DPD.
//!
//! The paper's core claim is that MPI message streams are periodic and
//! that a Dynamic Periodicity Detector can therefore predict *several*
//! future values at once. This example shows the whole lifecycle on a
//! synthetic stream: observe, lock a period, predict `+1 … +5`, and
//! measure accuracy online.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpi_predict::core::dpd::{DpdConfig, DpdPredictor};
use mpi_predict::core::eval::StreamEvaluator;
use mpi_predict::core::predictors::Predictor;
use mpi_predict::core::stream::exact_period;

fn main() {
    // The sender pattern of BT.9's process 3 (Figure 1a): period 18.
    let pattern: [u64; 18] = [5, 4, 0, 6, 2, 7, 5, 5, 4, 4, 0, 0, 6, 6, 2, 2, 7, 7];
    let stream: Vec<u64> = (0..50 * pattern.len())
        .map(|i| pattern[i % pattern.len()])
        .collect();
    println!(
        "stream: {} symbols, true period {:?}",
        stream.len(),
        exact_period(&pattern)
    );

    // 1. Online detection.
    let mut predictor = DpdPredictor::new(DpdConfig::default());
    let mut locked_at = None;
    for (i, &v) in stream.iter().enumerate() {
        predictor.observe(v);
        if locked_at.is_none() && predictor.period().is_some() {
            locked_at = Some(i + 1);
        }
    }
    println!(
        "DPD locked period {:?} after {} observations",
        predictor.period(),
        locked_at.unwrap_or(0)
    );

    // 2. Multi-step prediction: the next five senders, like the paper's
    //    +1 … +5 experiments.
    let next5 = predictor.predict_next(5);
    println!("next five predicted senders: {next5:?}");
    let expect: Vec<u64> = (0..5)
        .map(|h| pattern[(stream.len() + h) % pattern.len()])
        .collect();
    println!("actual continuation:         {expect:?}");
    assert_eq!(next5.into_iter().flatten().collect::<Vec<_>>(), expect);

    // 3. Online accuracy over the whole stream (counting the warm-up
    //    against the predictor, as the paper does).
    let mut ev = StreamEvaluator::new(DpdPredictor::new(DpdConfig::default()), 5);
    ev.feed_stream(&stream);
    println!("\nonline accuracy (+1 .. +5), warm-up counted as misses:");
    for h in 1..=5 {
        let acc = ev.tracker().horizon(h).accuracy().unwrap();
        println!("  +{h}: {:5.1} %", acc * 100.0);
    }
}
